//! # dq-core — the data auditing tool (the paper's contribution)
//!
//! This crate assembles the data auditing tool of *Systematic
//! Development of Data Mining-Based Data Quality Tools* (Luebbers,
//! Grimmer, Jarke; VLDB 2003):
//!
//! * [`confidence`] — the auditing-specific confidence machinery:
//!   **minInst** derivation from the user's minimal error confidence
//!   and the NULL extension of the error confidence (Defs. 7-9 proper
//!   live in `dq-stats`);
//! * [`auditor`] — the **multiple classification / regression
//!   approach**: one classifier per attribute, asynchronous structure
//!   induction and deviation detection, the structure model as
//!   probabilistic integrity constraints;
//! * [`engine`] — the `Sync`-shareable [`AuditEngine`]: a resident
//!   structure model (flat trees + compiled rule programs) answering
//!   concurrent detection requests, the substrate of `dq serve`;
//! * [`report`] — ranked findings with per-record overall error
//!   confidence (Def. 8);
//! * [`correction`] — proposed corrections from the highest-confidence
//!   classifier (sec. 5.3) and their application;
//! * [`association`] — the Hipp-style association-rule auditor used as
//!   the related-work comparator (sum-of-confidences scoring vs the
//!   paper's maximum).
//!
//! ```
//! use dq_core::{AuditConfig, Auditor};
//! use dq_table::{SchemaBuilder, Table, Value};
//!
//! // BRV = 404 → GBM = 901, with one deviation.
//! let schema = SchemaBuilder::new()
//!     .nominal("brv", ["404", "501"])
//!     .nominal("gbm", ["901", "911"])
//!     .build()
//!     .unwrap();
//! let mut table = Table::new(schema);
//! for _ in 0..1000 {
//!     table.push_row(&[Value::Nominal(0), Value::Nominal(0)]).unwrap();
//!     table.push_row(&[Value::Nominal(1), Value::Nominal(1)]).unwrap();
//! }
//! table.push_row(&[Value::Nominal(0), Value::Nominal(1)]).unwrap();
//!
//! let (model, report) = Auditor::default().run(&table).unwrap();
//! assert!(report.is_flagged(2000));
//! // Both classifiers flag the record (GBM deviates given BRV, and
//! // vice versa); the top finding is that record either way.
//! assert_eq!(report.findings[0].row, 2000);
//! ```

pub mod association;
pub mod auditor;
pub mod confidence;
pub mod correction;
pub mod engine;
pub mod error;
pub mod model_io;
pub mod report;
pub mod structure_rules;

pub use association::{
    association_rule_set, AssociationAuditConfig, AssociationAuditor, AssociationScoring,
};
pub use auditor::{AttrModel, AuditConfig, Auditor, StructureModel};
pub use confidence::{min_instances_for_confidence, null_error_confidence};
pub use correction::{apply_corrections, corrections_to_csv, propose_corrections, Correction};
pub use engine::AuditEngine;
pub use error::AuditError;
pub use model_io::{parse_model, render_model};
pub use report::{AuditReport, Finding};
pub use structure_rules::{StructureRule, StructureRuleSet};
