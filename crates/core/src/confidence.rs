//! Error-confidence machinery specific to the auditing context
//! (sec. 5.4).
//!
//! The interval-based error confidence itself (Defs. 7-9) lives in
//! `dq-stats`; this module adds the two derived quantities the auditor
//! needs:
//!
//! * [`min_instances_for_confidence`] — the paper's **minInst**: "if we
//!   let the user restrict his interest by giving a minimal confidence
//!   for detected errors, the system can easily calculate the minimal
//!   number minInst of instances of one class that have to occur in a
//!   leaf of the decision tree";
//! * [`null_error_confidence`] — the error confidence of an observed
//!   NULL against a prediction, treating the missing value as a class
//!   with zero observed probability (this is what lets the audit
//!   address the *completeness* dimension: "substituting an erroneously
//!   missing value by the suggestion of a data auditing application").

use dq_stats::{argmax, left_bound, right_bound};

/// The smallest number of instances of one class a leaf needs before
/// it can flag *any* deviation with error confidence `min_conf`.
///
/// Best case: a pure leaf of `n` instances observing a class that never
/// occurred there — `errorConf = leftBound(1, n) − rightBound(0, n)`,
/// which grows monotonically in `n`. Returns the smallest `n` where it
/// reaches `min_conf` (binary search; `u64::MAX` if unreachable, which
/// only happens for `min_conf = 1`).
pub fn min_instances_for_confidence(min_conf: f64, level: f64) -> u64 {
    assert!((0.0..=1.0).contains(&min_conf), "confidence out of range: {min_conf}");
    if min_conf <= 0.0 {
        return 1;
    }
    let best = |n: u64| left_bound(1.0, n as f64, level) - right_bound(0.0, n as f64, level);
    // Exponential bracket, then binary search the threshold.
    let mut hi = 1u64;
    while best(hi) < min_conf {
        if hi > (1 << 40) {
            return u64::MAX; // min_conf not attainable (≈ 1.0)
        }
        hi *= 2;
    }
    let mut lo = hi / 2; // best(lo) < min_conf ≤ best(hi)  (lo = 0 is vacuous)
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if best(mid) < min_conf {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// Error confidence of an observed NULL against a predicted class
/// distribution: `max(0, leftBound(P(ĉ), n) − rightBound(0, n))`.
///
/// A NULL never equals the prediction, and its observed probability in
/// the (NULL-free) training distribution is 0 — so this is Def. 7 with
/// `P(c) = 0`.
pub fn null_error_confidence(counts: &[f64], level: f64) -> f64 {
    let n: f64 = counts.iter().sum();
    if n <= 0.0 {
        return 0.0;
    }
    let p_pred = counts[argmax(counts)] / n;
    (left_bound(p_pred, n, level) - right_bound(0.0, n, level)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEVEL: f64 = 0.95;

    #[test]
    fn min_inst_is_the_exact_threshold() {
        for &conf in &[0.5, 0.8, 0.9, 0.99] {
            let m = min_instances_for_confidence(conf, LEVEL);
            let best = |n: f64| left_bound(1.0, n, LEVEL) - right_bound(0.0, n, LEVEL);
            assert!(best(m as f64) >= conf, "minInst {m} must reach {conf}");
            if m > 1 {
                assert!(best((m - 1) as f64) < conf, "minInst {m} must be minimal for {conf}");
            }
        }
    }

    #[test]
    fn min_inst_grows_with_confidence_and_level() {
        let m80 = min_instances_for_confidence(0.80, LEVEL);
        let m95 = min_instances_for_confidence(0.95, LEVEL);
        assert!(m95 > m80);
        let tighter = min_instances_for_confidence(0.80, 0.99);
        assert!(tighter > m80, "a stricter interval needs more instances");
        // Sanity: the 80%/95% combination the paper's experiments fix
        // lands in the tens of instances.
        assert!((10..200).contains(&m80), "minInst(0.8) = {m80}");
    }

    #[test]
    fn min_inst_edge_cases() {
        assert_eq!(min_instances_for_confidence(0.0, LEVEL), 1);
        assert_eq!(min_instances_for_confidence(1.0, LEVEL), u64::MAX);
    }

    #[test]
    fn null_confidence_mirrors_def7_with_zero_observed() {
        // Strong pure prediction: an observed NULL is a confident error.
        assert!(null_error_confidence(&[16_118.0, 0.0], LEVEL) > 0.99);
        // Weak prediction: not flaggable.
        assert!(null_error_confidence(&[2.0, 1.0], LEVEL) < 0.5);
        // No evidence: zero.
        assert_eq!(null_error_confidence(&[0.0, 0.0], LEVEL), 0.0);
        assert_eq!(null_error_confidence(&[], LEVEL), 0.0);
    }

    #[test]
    #[should_panic(expected = "confidence out of range")]
    fn rejects_bad_confidence() {
        min_instances_for_confidence(1.5, LEVEL);
    }
}
