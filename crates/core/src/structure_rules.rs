//! The structure model as **compiled integrity constraints**.
//!
//! Sec. 5.4: "in database terminology \[the structure model\] can be
//! seen as a set of integrity constraints that must hold with a given
//! probability". The classifier scan ([`crate::Auditor::detect`])
//! checks records through the flattened trees; this module is the
//! *rule* view of the same model — every root-to-leaf [`TreeRule`] is
//! lowered into a [`dq_logic::Rule`] (premise → class prescription),
//! passed through rulegen's [`CachedRule`] hygiene pass so the kept
//! constraints are pairwise compatible, and compiled once into
//! [`CompiledRuleSet`] violation programs. Detection then walks flat
//! guard-first branch programs over a [`RecordView`] instead of
//! interpreting `Formula` trees record-at-a-time.
//!
//! The interpreted walk is retained as
//! [`StructureRuleSet::detect_reference`] — the serial ground truth the
//! audit-program equivalence suite pins the compiled scan against at
//! every thread count (the PR 4/5 pattern).

use crate::auditor::{materialize_class, StructureModel};
use crate::confidence::null_error_confidence;
use crate::report::{AuditReport, Finding};
use dq_logic::pairs::pair_conflict;
use dq_logic::{
    eval_rule, Atom, CachedRule, CompiledRuleSet, Formula, RecordView, Rule, RuleSet, RuleStatus,
};
use dq_mining::{ClassSpec, ConditionTest, TreeRule};
use dq_table::{Binning, RowSlice, Schema, Table, Value};

/// One kept integrity constraint with the leaf statistics that turn a
/// violation into a ranked finding.
#[derive(Debug, Clone)]
pub struct StructureRule {
    /// The attribute this rule prescribes a value for.
    pub class_attr: usize,
    /// The prescribed class code (nominal code or bin index).
    pub predicted: u32,
    /// The prescription materialized as a concrete cell value (the
    /// finding's proposed correction).
    pub proposed: Value,
    /// How the class attribute is coded (needed to score an observed
    /// cell against `counts`).
    pub spec: ClassSpec,
    /// Weighted class counts at the source leaf.
    pub counts: Vec<f64>,
    /// Training instances behind the rule.
    pub support: f64,
    /// The lowered logical rule (premise → class prescription).
    pub rule: Rule,
}

/// The structure model's rules, hygiene-filtered and compiled.
#[derive(Debug, Clone)]
pub struct StructureRuleSet {
    /// Kept rules in (model, leaf) order.
    pub rules: Vec<StructureRule>,
    /// Rules dropped by the pairwise-compatibility hygiene pass.
    pub dropped: usize,
    compiled: CompiledRuleSet,
    min_confidence: f64,
    level: f64,
    flag_nulls: bool,
}

impl StructureRuleSet {
    /// Lower `model` into logical rules, run rulegen's hygiene pass
    /// (greedy first-accepted-wins over the Def. 6 [`pair_conflict`],
    /// sharing the same [`CachedRule`] DNF machinery), and compile the
    /// survivors into violation programs.
    ///
    /// Rulegen's *strict* instance check is deliberately not applied:
    /// two models' rules routinely hold premises together on a corrupt
    /// record while prescribing incompatible repairs — that is the
    /// deviation the audit exists to flag, not a rule-base defect.
    pub fn compile(model: &StructureModel, schema: &Schema) -> StructureRuleSet {
        let cfg = model.config();
        let mut kept: Vec<StructureRule> = Vec::new();
        let mut accepted: Vec<CachedRule> = Vec::new();
        let mut dropped = 0usize;
        for m in &model.models {
            for tr in &m.rules {
                let rule = lower_rule(tr, m.class_attr, &m.spec, cfg.flag_nulls);
                let cached = CachedRule::new(schema, rule.clone());
                let conflicts = accepted.iter().any(|a| pair_conflict(schema, a, &cached));
                if conflicts {
                    dropped += 1;
                    continue;
                }
                accepted.push(cached);
                kept.push(StructureRule {
                    class_attr: m.class_attr,
                    predicted: tr.predicted,
                    proposed: materialize_class(schema, m.class_attr, &m.spec, tr.predicted),
                    spec: m.spec.clone(),
                    counts: tr.counts.clone(),
                    support: tr.support,
                    rule,
                });
            }
        }
        let set = RuleSet::from_rules(kept.iter().map(|r| r.rule.clone()).collect());
        let compiled = CompiledRuleSet::compile(&set, schema.len());
        StructureRuleSet {
            rules: kept,
            dropped,
            compiled,
            min_confidence: cfg.min_confidence,
            level: cfg.level,
            flag_nulls: cfg.flag_nulls,
        }
    }

    /// Number of kept rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rule survived.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The compiled violation programs (for inspection/tests).
    pub fn compiled(&self) -> &CompiledRuleSet {
        &self.compiled
    }

    /// Check every record against the compiled constraints.
    ///
    /// The scan shards into one row chunk per worker; within a record,
    /// rules are checked in kept order and scored exactly like
    /// [`StructureRuleSet::detect_reference`], so the report is
    /// byte-identical at every thread count.
    pub fn detect(&self, table: &Table, threads: impl Into<dq_exec::Parallelism>) -> AuditReport {
        let pool = threads.into().pool();
        let chunks = table.chunks(pool.threads());
        let partials = pool.map_indexed(&chunks, |_, chunk| self.scan_chunk(chunk));
        let mut findings = Vec::new();
        let mut record_confidence = Vec::with_capacity(table.n_rows());
        for (chunk_findings, chunk_confidence) in partials {
            findings.extend(chunk_findings);
            record_confidence.extend(chunk_confidence);
        }
        AuditReport::new(findings, record_confidence, self.min_confidence)
    }

    /// Reference detection: the record-at-a-time interpreted `Formula`
    /// walk ([`eval_rule`]), serial and unoptimized on purpose — the
    /// ground truth for the equivalence suite and the "before" side of
    /// the structure-rule benchmarks.
    pub fn detect_reference(&self, table: &Table) -> AuditReport {
        let mut findings = Vec::new();
        let mut record_confidence = Vec::with_capacity(table.n_rows());
        let mut record: Vec<Value> = Vec::with_capacity(table.n_cols());
        for row in 0..table.n_rows() {
            table.row_into(row, &mut record);
            let mut row_conf = 0.0f64;
            for sr in &self.rules {
                if eval_rule(&sr.rule, &record) != RuleStatus::Violated {
                    continue;
                }
                let confidence = self.violation_confidence(sr, &record[sr.class_attr]);
                row_conf = row_conf.max(confidence);
                if confidence >= self.min_confidence {
                    findings.push(Finding {
                        row,
                        attr: sr.class_attr,
                        observed: record[sr.class_attr],
                        proposed: sr.proposed,
                        confidence,
                        support: sr.support,
                    });
                }
            }
            record_confidence.push(row_conf);
        }
        AuditReport::new(findings, record_confidence, self.min_confidence)
    }

    /// Scan one row chunk through the compiled violation programs.
    fn scan_chunk(&self, chunk: &RowSlice<'_>) -> (Vec<Finding>, Vec<f64>) {
        let table = chunk.table();
        let mut findings = Vec::new();
        let mut confidences = Vec::with_capacity(chunk.len());
        let mut record: Vec<Value> = Vec::with_capacity(table.n_cols());
        let mut view = RecordView::new(table.n_cols());
        for row in chunk.rows() {
            table.row_into(row, &mut record);
            view.sync_all(&record);
            let mut row_conf = 0.0f64;
            for (i, sr) in self.rules.iter().enumerate() {
                if !self.compiled.violates_rule_view(i, &view) {
                    continue;
                }
                let confidence = self.violation_confidence(sr, &record[sr.class_attr]);
                row_conf = row_conf.max(confidence);
                if confidence >= self.min_confidence {
                    findings.push(Finding {
                        row,
                        attr: sr.class_attr,
                        observed: record[sr.class_attr],
                        proposed: sr.proposed,
                        confidence,
                        support: sr.support,
                    });
                }
            }
            confidences.push(row_conf);
        }
        (findings, confidences)
    }

    /// Error confidence of an observed cell against a violated rule's
    /// leaf distribution — the same Def. 8/9 arithmetic the classifier
    /// scan uses.
    fn violation_confidence(&self, sr: &StructureRule, observed: &Value) -> f64 {
        match sr.spec.code_of(observed) {
            Some(code) => dq_stats::error_confidence(&sr.counts, code as usize, self.level),
            None if self.flag_nulls => null_error_confidence(&sr.counts, self.level),
            None => 0.0,
        }
    }
}

impl crate::Auditor {
    /// Rule-view detection: compile `model`'s rules into violation
    /// programs (see [`StructureRuleSet::compile`]) and check every
    /// record, sharded across [`crate::AuditConfig::threads`] workers.
    pub fn detect_rules(&self, model: &StructureModel, table: &Table) -> AuditReport {
        StructureRuleSet::compile(model, table.schema()).detect(table, self.config.threads)
    }

    /// Serial interpreted ground truth for [`crate::Auditor::detect_rules`].
    pub fn detect_rules_reference(&self, model: &StructureModel, table: &Table) -> AuditReport {
        StructureRuleSet::compile(model, table.schema()).detect_reference(table)
    }
}

/// Lower one tree rule into `premise → class prescription`.
///
/// Premise: `Eq(code)` → `attr = #code`; `LessEq(t)` → `attr < t ∨
/// attr = t`; `Greater(t)` → `attr > t`. All atoms are NULL-strict, so
/// a record with a NULL base attribute never matches — the rule view's
/// documented difference from the tree scan, which distributes missing
/// values across branches.
///
/// Consequent: the prescribed class — a nominal code or, for binned
/// classes, the predicted bin's numeric interval over the raw cell.
/// When `flag_nulls` is off a NULL class cell satisfies the
/// prescription (audit-of-incompleteness disabled); when on, NULL
/// violates it and scores via the NULL error confidence.
fn lower_rule(tr: &TreeRule, class_attr: usize, spec: &ClassSpec, flag_nulls: bool) -> Rule {
    let premise = Formula::And(
        tr.conditions
            .iter()
            .map(|c| match c.test {
                ConditionTest::Eq(code) => {
                    Formula::Atom(Atom::EqConst { attr: c.attr, value: Value::Nominal(code) })
                }
                ConditionTest::LessEq(t) => less_eq(c.attr, t),
                ConditionTest::Greater(t) => {
                    Formula::Atom(Atom::GreaterConst { attr: c.attr, value: t })
                }
            })
            .collect(),
    );
    let prescription = match spec {
        ClassSpec::Nominal { .. } => {
            Formula::Atom(Atom::EqConst { attr: class_attr, value: Value::Nominal(tr.predicted) })
        }
        ClassSpec::Binned { binning } => bin_formula(class_attr, binning, tr.predicted),
    };
    let consequent = if flag_nulls {
        prescription
    } else {
        Formula::Or(vec![prescription, Formula::Atom(Atom::IsNull { attr: class_attr })])
    };
    Rule::new(premise, consequent)
}

/// `attr <= t` over NULL-strict `<`/`=` atoms.
fn less_eq(attr: usize, t: f64) -> Formula {
    Formula::Or(vec![
        Formula::Atom(Atom::LessConst { attr, value: t }),
        Formula::Atom(Atom::EqConst { attr, value: Value::Number(t) }),
    ])
}

/// The numeric interval of bin `bin` under `binning`, as a formula over
/// the raw (non-NULL) cell. Mirrors [`Binning::bin_of`]: bin `b` holds
/// `x` iff `x > edges[b-1]` (when `b > 0`) and `x <= edges[b]` (when
/// `b < edges.len()`); a degenerate binning with no edges puts every
/// known value in bin 0.
fn bin_formula(attr: usize, binning: &Binning, bin: u32) -> Formula {
    let bin = bin as usize;
    let n = binning.edges.len();
    if n == 0 {
        return Formula::Atom(Atom::IsNotNull { attr });
    }
    if bin == 0 {
        less_eq(attr, binning.edges[0])
    } else if bin >= n {
        Formula::Atom(Atom::GreaterConst { attr, value: binning.edges[n - 1] })
    } else {
        Formula::And(vec![
            Formula::Atom(Atom::GreaterConst { attr, value: binning.edges[bin - 1] }),
            less_eq(attr, binning.edges[bin]),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auditor::{AuditConfig, Auditor};
    use dq_table::SchemaBuilder;

    /// BRV=404 ⇒ GBM=901, BRV=501 ⇒ GBM=911, plus an ordered attribute
    /// correlated with BRV, one deviation, a NULL row and an
    /// out-of-label code.
    fn table() -> Table {
        let schema = SchemaBuilder::new()
            .nominal("brv", ["404", "501"])
            .nominal("gbm", ["901", "911"])
            .numeric("weight", 0.0, 200.0)
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..300 {
            let b = (i % 2) as u32;
            t.push_row(&[
                Value::Nominal(b),
                Value::Nominal(b),
                Value::Number(10.0 + 100.0 * b as f64 + (i % 7) as f64),
            ])
            .unwrap();
        }
        t.push_row(&[Value::Nominal(0), Value::Nominal(1), Value::Number(12.0)]).unwrap();
        t.push_row(&[Value::Nominal(0), Value::Null, Value::Null]).unwrap();
        t.push_row(&[Value::Nominal(1), Value::Nominal(1), Value::Number(111.0)]).unwrap();
        let last = t.n_rows() - 1;
        t.set(last, 1, Value::Nominal(7)).unwrap(); // out-of-label code
        t
    }

    fn model(t: &Table) -> StructureModel {
        Auditor::new(AuditConfig::default()).induce(t).unwrap()
    }

    #[test]
    fn flags_the_planted_deviation() {
        let t = table();
        let rules = StructureRuleSet::compile(&model(&t), t.schema());
        assert!(!rules.is_empty());
        let report = rules.detect(&t, Some(1));
        assert!(report.is_flagged(300));
        assert!(!report.is_flagged(0));
    }

    #[test]
    fn compiled_detect_matches_reference_at_every_thread_count() {
        let t = table();
        let rules = StructureRuleSet::compile(&model(&t), t.schema());
        let reference = rules.detect_reference(&t);
        for threads in [1, 2, 4] {
            let report = rules.detect(&t, Some(threads));
            assert_eq!(report.findings, reference.findings, "threads={threads}");
            assert_eq!(report.record_confidence.len(), reference.record_confidence.len());
            for (a, b) in report.record_confidence.iter().zip(&reference.record_confidence) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn flag_nulls_turns_null_classes_into_violations() {
        // Two columns only, so every premise is over the (non-NULL)
        // partner attribute and a NULL class cell is reachable.
        let schema = SchemaBuilder::new()
            .nominal("brv", ["404", "501"])
            .nominal("gbm", ["901", "911"])
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..300 {
            let b = (i % 2) as u32;
            t.push_row(&[Value::Nominal(b), Value::Nominal(b)]).unwrap();
        }
        t.push_row(&[Value::Nominal(0), Value::Null]).unwrap();
        let flagged = Auditor::new(AuditConfig { flag_nulls: true, ..AuditConfig::default() })
            .induce(&t)
            .unwrap();
        let rules = StructureRuleSet::compile(&flagged, t.schema());
        let report = rules.detect(&t, Some(1));
        let reference = rules.detect_reference(&t);
        assert_eq!(report.findings, reference.findings);
        // The NULL row violates the brv=404 ⇒ gbm=901 prescription.
        assert!(report.record_confidence[300] > 0.0);
    }

    #[test]
    fn hygiene_pass_drops_contradicting_rules() {
        // Induce a second model from a table with the opposite
        // dependency (brv=404 ⇒ gbm=911) and merge it in: identical
        // premises now carry contradicting prescriptions, which the
        // pairwise hygiene pass must reject first-accepted-wins.
        // (`flag_nulls` keeps the consequents bare prescriptions — with
        // the NULL disjunct both would be jointly satisfiable by an
        // incomplete record and thus compatible.)
        let t = table();
        let mut flipped = Table::new(t.schema().clone());
        for i in 0..300 {
            let b = (i % 2) as u32;
            flipped
                .push_row(&[
                    Value::Nominal(b),
                    Value::Nominal(1 - b),
                    Value::Number(10.0 + 100.0 * b as f64 + (i % 7) as f64),
                ])
                .unwrap();
        }
        let strict = AuditConfig { flag_nulls: true, ..AuditConfig::default() };
        let mut m = Auditor::new(strict.clone()).induce(&t).unwrap();
        m.models.extend(Auditor::new(strict).induce(&flipped).unwrap().models);
        let rules = StructureRuleSet::compile(&m, t.schema());
        assert!(rules.dropped > 0, "flipped duplicate leaves must be dropped");
        // Dropping is deterministic and first-accepted-wins, so the
        // detector still matches its reference.
        let report = rules.detect(&t, Some(2));
        let reference = rules.detect_reference(&t);
        assert_eq!(report.findings, reference.findings);
    }

    #[test]
    fn bin_formula_mirrors_bin_of() {
        let binning = Binning { edges: vec![1.0, 5.0], n_bins: 3 };
        let schema = SchemaBuilder::new().numeric("x", -10.0, 100.0).build().unwrap();
        for bin in 0..3u32 {
            let f = bin_formula(0, &binning, bin);
            for x in [-3.0, 0.0, 1.0, 2.5, 5.0, 5.1, 80.0] {
                let record = [Value::Number(x)];
                let expect = binning.bin_of(x) == bin;
                assert_eq!(
                    dq_logic::eval_formula(&f, &record),
                    expect,
                    "bin={bin} x={x} schema={:?}",
                    schema.attr(0).name
                );
            }
            assert!(!dq_logic::eval_formula(&f, &[Value::Null]), "NULL is never in a bin");
        }
    }
}
