//! The resident audit engine: detection state, `Sync`-shareable.
//!
//! The paper separates structure induction from deviation detection so
//! that "the time-consuming structure induction can be prepared
//! off-line, new data can be checked for deviations and loaded
//! quickly". [`AuditEngine`] is the serve-forever half of that split
//! made concrete: it owns everything detection needs — the
//! [`StructureModel`] (whose [`AttrModel`]s carry
//! their compiled [`FlatTree`](dq_mining::FlatTree) evaluators), the
//! relation's [`Schema`], and the structure rules lowered onto
//! compiled violation programs ([`StructureRuleSet`]) — and exposes
//! every detection entry point through `&self`, so one engine can
//! answer any number of concurrent requests. The type is `Send + Sync`
//! by construction (asserted at compile time below): share it behind
//! an `Arc` across however many server threads you like.
//!
//! The batch [`Auditor`](crate::Auditor) is rewired on top of this
//! module: `Auditor::detect`/`detect_stream` delegate to the same
//! scan internals, so an engine's answers are **byte-identical** to
//! the batch auditor's — the invariant `tests/serve_equivalence.rs`
//! pins under concurrency.

use crate::auditor::{materialize_class, AttrModel, StructureModel};
use crate::error::AuditError;
use crate::report::{AuditReport, Finding};
use crate::structure_rules::StructureRuleSet;
use dq_exec::Parallelism;
use dq_table::{BatchSource, CsvChunkReader, RowSlice, Schema, Table, Value};
use std::io::BufRead;
use std::path::Path;
use std::sync::Arc;

// The whole point of the engine: it must be shareable across request
// threads without locks. Compile-time, not a test.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AuditEngine>();
};

/// A loaded structure model plus its schema, resident and ready to
/// answer detection requests concurrently.
///
/// Construction compiles the model's structure rules into violation
/// programs once; after that every entry point takes `&self` and
/// allocates only per-request state, so the engine is the
/// train-once/audit-forever substrate of `dq serve`.
#[derive(Debug)]
pub struct AuditEngine {
    model: StructureModel,
    schema: Arc<Schema>,
    rules: StructureRuleSet,
    /// Worker threads *per request* (the [`AuditConfig::threads`]
    /// semantics, as a shared [`Parallelism`] knob). A server answering
    /// many concurrent requests wants [`Parallelism::serial`]:
    /// concurrency comes from the request fan-out, not from sharding
    /// each scan.
    threads: Parallelism,
}

impl AuditEngine {
    /// Build an engine from an induced (or loaded) model and its
    /// schema. Compiles the structure-rule programs eagerly so nothing
    /// is built per request.
    pub fn new(model: StructureModel, schema: Arc<Schema>) -> Self {
        let rules = StructureRuleSet::compile(&model, &schema);
        AuditEngine { model, schema, rules, threads: Parallelism::serial() }
    }

    /// Load a persisted `.dqm` model against `schema` and make it
    /// resident (validates the format version, the schema fingerprint
    /// and every rule line — see [`crate::model_io`]).
    pub fn load<R: BufRead>(schema: Arc<Schema>, input: R) -> Result<Self, AuditError> {
        let model = StructureModel::load(&schema, input)?;
        Ok(AuditEngine::new(model, schema))
    }

    /// Load from a `.dqm` file path.
    pub fn load_from_path(schema: Arc<Schema>, path: impl AsRef<Path>) -> Result<Self, AuditError> {
        let model = StructureModel::load_from_path(&schema, path)?;
        Ok(AuditEngine::new(model, schema))
    }

    /// Set the per-request worker-thread knob (accepts a
    /// [`Parallelism`], an explicit `usize`, or the legacy
    /// `Option<usize>` where `None` = hardware parallelism honouring
    /// `DQ_THREADS`). Results are identical at every thread count.
    pub fn with_threads(mut self, threads: impl Into<Parallelism>) -> Self {
        self.threads = threads.into();
        self
    }

    /// The resident structure model.
    pub fn model(&self) -> &StructureModel {
        &self.model
    }

    /// The relation schema the model audits.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The schema fingerprint requests are routed by.
    pub fn fingerprint(&self) -> u64 {
        self.schema.fingerprint()
    }

    /// The structure rules lowered onto compiled violation programs,
    /// resident since construction.
    pub fn structure_rules(&self) -> &StructureRuleSet {
        &self.rules
    }

    /// **Deviation detection** over an in-memory table — the engine
    /// form of [`crate::Auditor::detect`], byte-identical to it.
    pub fn detect(&self, table: &Table) -> AuditReport {
        detect_table(&self.model, table, self.threads, scan_chunk)
    }

    /// Detection through the compiled structure-rule programs (the
    /// explicit-constraint auditor of `structure_rules`), resident
    /// since construction.
    pub fn detect_rules(&self, table: &Table) -> AuditReport {
        self.rules.detect(table, self.threads)
    }

    /// **Streaming deviation detection** over any [`BatchSource`] —
    /// the engine form of [`crate::Auditor::detect_stream`],
    /// byte-identical to it: the first failing batch aborts the scan
    /// with its error.
    pub fn detect_stream(&self, batches: impl BatchSource) -> Result<AuditReport, AuditError> {
        let (report, error) = detect_batches(&self.model, self.threads, batches);
        match error {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }

    /// Streaming detection that **keeps the partial report** when the
    /// stream fails mid-way: returns the report over every complete
    /// batch before the failure, plus the error itself. With no error
    /// the report covers the whole stream and equals
    /// [`AuditEngine::detect_stream`]'s.
    ///
    /// Rows inside the failing batch are not recoverable (a torn batch
    /// never materializes — see [`CsvChunkReader`]); the partial
    /// report ends at the last complete batch boundary.
    pub fn detect_stream_partial(
        &self,
        batches: impl BatchSource,
    ) -> (AuditReport, Option<AuditError>) {
        detect_batches(&self.model, self.threads, batches)
    }

    /// Scan one batch whose first row has global index `row_offset`,
    /// returning the batch's findings (row indices globalized) and its
    /// per-row error confidences in row order — the incremental unit a
    /// checkpointed `dq detect` persists at each commit. The
    /// arithmetic is exactly the streaming scan's, so accumulating
    /// parts across batches and finishing with
    /// [`AuditEngine::report_from_parts`] is byte-identical to one
    /// uninterrupted [`AuditEngine::detect_stream`].
    pub fn scan_batch(&self, batch: &Table, row_offset: usize) -> (Vec<Finding>, Vec<f64>) {
        let pool = self.threads.pool();
        let chunks = batch.chunks(pool.threads());
        let partials = pool.map_indexed(&chunks, |_, chunk| scan_chunk(&self.model, chunk));
        let mut findings = Vec::new();
        let mut confidences = Vec::with_capacity(batch.n_rows());
        for (chunk_findings, chunk_confidence) in partials {
            findings.extend(chunk_findings.into_iter().map(|mut f| {
                f.row += row_offset;
                f
            }));
            confidences.extend(chunk_confidence);
        }
        (findings, confidences)
    }

    /// Assemble the final report from parts accumulated by
    /// [`AuditEngine::scan_batch`] — the same rank ordering (and
    /// min-confidence threshold) every other detection entry point
    /// applies, so a resumed audit's report is byte-identical to an
    /// uninterrupted one's.
    pub fn report_from_parts(
        &self,
        findings: Vec<Finding>,
        record_confidence: Vec<f64>,
    ) -> AuditReport {
        AuditReport::new(findings, record_confidence, self.model.config().min_confidence)
    }

    /// Audit a CSV stream (header + records) end to end: chunks of
    /// `chunk_rows` rows flow through [`CsvChunkReader`] into the
    /// streaming scan. Byte-identical to reading the whole stream into
    /// memory and calling [`AuditEngine::detect`], at O(chunk) memory.
    pub fn detect_csv<R: BufRead>(
        &self,
        input: R,
        chunk_rows: usize,
    ) -> Result<AuditReport, AuditError> {
        let reader = CsvChunkReader::new(self.schema.clone(), input, chunk_rows)?;
        self.detect_stream(reader)
    }

    /// Audit a single headerless CSV record line. The line is parsed
    /// exactly like a data row of a one-row CSV body (cell errors
    /// report the synthetic stream's line numbers: the implied header
    /// is line 1, the record line 2).
    pub fn detect_record_csv(&self, line: &str) -> Result<AuditReport, AuditError> {
        let names: Vec<&str> = self.schema.attributes().iter().map(|a| a.name.as_str()).collect();
        let body = format!("{}\n{}\n", names.join(","), line.trim_end_matches(['\r', '\n']));
        self.detect_csv(body.as_bytes(), 1)
    }
}

/// A chunk scanner: the columnar [`scan_chunk`] or the reference
/// [`scan_chunk_reference`].
pub(crate) type ScanFn = fn(&StructureModel, &RowSlice<'_>) -> (Vec<Finding>, Vec<f64>);

/// The in-memory detection core shared by [`AuditEngine::detect`] and
/// [`crate::Auditor::detect`]: shard the table into one row chunk per
/// worker, scan, merge partial reports in row order.
pub(crate) fn detect_table(
    model: &StructureModel,
    table: &Table,
    threads: Parallelism,
    scan: ScanFn,
) -> AuditReport {
    let cfg = model.config();
    let pool = threads.pool();
    let chunks = table.chunks(pool.threads());
    let partials = pool.map_indexed(&chunks, |_, chunk| scan(model, chunk));
    let mut findings = Vec::new();
    let mut record_confidence = Vec::with_capacity(table.n_rows());
    for (chunk_findings, chunk_confidence) in partials {
        findings.extend(chunk_findings);
        record_confidence.extend(chunk_confidence);
    }
    AuditReport::new(findings, record_confidence, cfg.min_confidence)
}

/// The streaming detection core shared by the engine and the batch
/// auditor: scan batches in order, offsetting row indices globally;
/// stop at the first failing batch and return what was scanned so far
/// together with the error. Byte-identical to the in-memory core over
/// the concatenated batches, for every batch size and thread count.
pub(crate) fn detect_batches(
    model: &StructureModel,
    threads: Parallelism,
    mut batches: impl BatchSource,
) -> (AuditReport, Option<AuditError>) {
    let cfg = model.config();
    let pool = threads.pool();
    let mut findings = Vec::new();
    let mut record_confidence = Vec::with_capacity(batches.row_count_hint().unwrap_or(0));
    let mut offset = 0usize;
    let mut error = None;
    loop {
        let batch = match batches.next_batch() {
            Ok(Some(batch)) => batch,
            Ok(None) => break,
            Err(e) => {
                error = Some(AuditError::from(e));
                break;
            }
        };
        let chunks = batch.chunks(pool.threads());
        let partials = pool.map_indexed(&chunks, |_, chunk| scan_chunk(model, chunk));
        for (chunk_findings, chunk_confidence) in partials {
            findings.extend(chunk_findings.into_iter().map(|mut f| {
                f.row += offset;
                f
            }));
            record_confidence.extend(chunk_confidence);
        }
        offset += batch.n_rows();
    }
    (AuditReport::new(findings, record_confidence, cfg.min_confidence), error)
}

/// Scan one row chunk against the structure model, returning the
/// chunk's findings (global row indices) and its per-row overall error
/// confidences (Def. 8), in row order. Sharding happens strictly at
/// chunk granularity, so the per-row arithmetic is bit-identical at
/// every thread count.
///
/// This is the **columnar** inner loop: C4.5 models classify through
/// their compiled [`dq_mining::FlatTree`]s straight off the table's
/// typed columns into one reused class-count buffer — no per-row
/// `Vec<Value>` materialization, no per-prediction allocation. A full
/// row record is materialized only when a non-C4.5 model (which takes
/// whole records) is present. The per-finding arithmetic is unchanged
/// from [`scan_chunk_reference`], so reports are byte-identical.
pub(crate) fn scan_chunk(model: &StructureModel, chunk: &RowSlice<'_>) -> (Vec<Finding>, Vec<f64>) {
    let cfg = model.config();
    let table = chunk.table();
    let mut findings = Vec::new();
    let mut confidences = Vec::with_capacity(chunk.len());
    // Per-model facts hoisted out of the row loop (the class-card
    // lookup is a virtual call; rows × models of them add up).
    let prepared: Vec<(&AttrModel, usize, Option<&dq_mining::FlatTree>)> = model
        .models
        .iter()
        .map(|m| (m, m.classifier.class_card() as usize, m.flat_tree()))
        .collect();
    let max_card = prepared.iter().map(|&(_, card, _)| card).max().unwrap_or(0);
    let mut acc = vec![0.0f64; max_card];
    // One typed-cell row buffer shared by every model's tree walk (the
    // cells are fetched once per row); a full `Value` record exists
    // only when a non-C4.5 model (which takes whole records) is
    // present.
    let mut cells: Vec<dq_table::TypedCell> = Vec::with_capacity(table.n_cols());
    let needs_record = prepared.iter().any(|&(_, _, flat)| flat.is_none());
    let mut record: Vec<Value> = Vec::with_capacity(if needs_record { table.n_cols() } else { 0 });
    for row in chunk.rows() {
        table.typed_row_into(row, &mut cells);
        if needs_record {
            table.row_into(row, &mut record);
        }
        let mut row_confidence = 0.0f64;
        for &(m, card, flat) in &prepared {
            let boxed_prediction;
            let counts: &[f64] = match flat {
                Some(flat) => flat.classify_cells(&cells, &mut acc[..card]),
                None => {
                    boxed_prediction = m.classifier.predict(&record);
                    &boxed_prediction.counts
                }
            };
            let support: f64 = counts.iter().sum();
            if support <= 0.0 {
                continue;
            }
            let confidence = match m.spec.code_of_cell(cells[m.class_attr]) {
                Some(code) => dq_stats::error_confidence(counts, code as usize, cfg.level),
                None if cfg.flag_nulls => {
                    crate::confidence::null_error_confidence(counts, cfg.level)
                }
                None => 0.0,
            };
            if confidence <= 0.0 {
                continue;
            }
            row_confidence = row_confidence.max(confidence);
            if confidence >= cfg.min_confidence {
                let predicted_code = dq_stats::argmax(counts) as u32;
                findings.push(Finding {
                    row,
                    attr: m.class_attr,
                    observed: table.get(row, m.class_attr),
                    proposed: materialize_class(
                        table.schema(),
                        m.class_attr,
                        &m.spec,
                        predicted_code,
                    ),
                    confidence,
                    support,
                });
            }
        }
        confidences.push(row_confidence);
    }
    (findings, confidences)
}

/// The pre-flattening inner loop: every row materialized into a
/// `Vec<Value>` record, every model classified through its boxed
/// [`Node`](dq_mining::Node) tree with a fresh count allocation per
/// prediction. Ground truth for [`scan_chunk`]'s byte-identity.
pub(crate) fn scan_chunk_reference(
    model: &StructureModel,
    chunk: &RowSlice<'_>,
) -> (Vec<Finding>, Vec<f64>) {
    let cfg = model.config();
    let table = chunk.table();
    let mut findings = Vec::new();
    let mut confidences = Vec::with_capacity(chunk.len());
    let mut record: Vec<Value> = Vec::with_capacity(table.n_cols());
    for row in chunk.rows() {
        table.row_into(row, &mut record);
        let mut row_confidence = 0.0f64;
        for m in &model.models {
            let prediction = m.classifier.predict(&record);
            if prediction.support <= 0.0 {
                continue;
            }
            let observed = record[m.class_attr];
            let confidence = match m.spec.code_of(&observed) {
                Some(code) => prediction.error_confidence(code, cfg.level),
                None if cfg.flag_nulls => {
                    crate::confidence::null_error_confidence(&prediction.counts, cfg.level)
                }
                None => 0.0,
            };
            if confidence <= 0.0 {
                continue;
            }
            row_confidence = row_confidence.max(confidence);
            if confidence >= cfg.min_confidence {
                let predicted_code = prediction.predicted_class();
                findings.push(Finding {
                    row,
                    attr: m.class_attr,
                    observed,
                    proposed: materialize_class(
                        table.schema(),
                        m.class_attr,
                        &m.spec,
                        predicted_code,
                    ),
                    confidence,
                    support: prediction.support,
                });
            }
        }
        confidences.push(row_confidence);
    }
    (findings, confidences)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auditor::Auditor;
    use dq_table::{ReplaySource, SchemaBuilder, TableError, Value};

    fn fixture() -> Table {
        let schema = SchemaBuilder::new()
            .nominal("brv", ["404", "501"])
            .nominal("gbm", ["901", "911"])
            .numeric("n", 0.0, 100.0)
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..1200u32 {
            let (brv, gbm) = if i % 3 == 0 { (1, 1) } else { (0, 0) };
            let n = if brv == 0 { 10.0 + f64::from(i % 9) } else { 80.0 + f64::from(i % 9) };
            t.push_row(&[Value::Nominal(brv), Value::Nominal(gbm), Value::Number(n)]).unwrap();
        }
        t.push_row(&[Value::Nominal(0), Value::Nominal(1), Value::Number(12.0)]).unwrap();
        t
    }

    #[test]
    fn engine_detect_matches_auditor_detect_byte_for_byte() {
        let t = fixture();
        let auditor = Auditor::default();
        let model = auditor.induce(&t).unwrap();
        let expected = auditor.detect(&model, &t);
        let schema = t.schema().clone();
        let engine = AuditEngine::new(auditor.induce(&t).unwrap(), schema.clone());
        let got = engine.detect(&t);
        assert_eq!(got.to_csv(&schema), expected.to_csv(&schema));
        assert_eq!(got.findings, expected.findings);
        let bits = |v: &[f64]| v.iter().map(|c| c.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&got.record_confidence), bits(&expected.record_confidence));
    }

    #[test]
    fn engine_is_shareable_across_scoped_threads() {
        let t = fixture();
        let auditor = Auditor::default();
        let model = auditor.induce(&t).unwrap();
        let expected = auditor.detect(&model, &t).to_csv(t.schema());
        let engine = std::sync::Arc::new(AuditEngine::new(model, t.schema().clone()));
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let engine = engine.clone();
                    let t = &t;
                    let expected = expected.clone();
                    s.spawn(move || {
                        for _ in 0..3 {
                            assert_eq!(engine.detect(t).to_csv(engine.schema()), expected);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
    }

    #[test]
    fn detect_csv_and_record_round_trip() {
        let t = fixture();
        let auditor = Auditor::default();
        let model = auditor.induce(&t).unwrap();
        let schema = t.schema().clone();
        let engine = AuditEngine::new(model, schema.clone());
        let mut csv = Vec::new();
        dq_table::write_csv(&t, &mut csv).unwrap();
        let streamed = engine.detect_csv(csv.as_slice(), 257).unwrap();
        assert_eq!(streamed.to_csv(&schema), engine.detect(&t).to_csv(&schema));

        // The deviant last row, audited alone.
        let text = String::from_utf8(csv).unwrap();
        let last = text.lines().last().unwrap();
        let single = engine.detect_record_csv(last).unwrap();
        assert_eq!(single.n_rows(), 1);
        assert!(single.is_flagged(0), "the deviant record must be flagged alone");
    }

    #[test]
    fn detect_stream_partial_keeps_complete_batches() {
        let t = fixture();
        let auditor = Auditor::default();
        let model = auditor.induce(&t).unwrap();
        let schema = t.schema().clone();
        let engine = AuditEngine::new(model, schema.clone());

        // Two good batches, then a torn one.
        let (a, b) = (sub_table(&t, 0, 400), sub_table(&t, 400, 800));
        let batches = ReplaySource::new(
            schema.clone(),
            vec![
                Ok(a.clone()),
                Ok(b.clone()),
                Err(TableError::CsvCell { line: 802, column: "n".into(), message: "boom".into() }),
            ],
        );
        let (partial, err) = engine.detect_stream_partial(batches);
        assert_eq!(partial.n_rows(), 800);
        match err {
            Some(AuditError::Table(TableError::CsvCell { line, .. })) => assert_eq!(line, 802),
            other => panic!("expected the CSV cell error, got {other:?}"),
        }
        // The partial equals an in-memory detect over the first 800 rows.
        let first800 = sub_table(&t, 0, 800);
        assert_eq!(partial.to_csv(&schema), engine.detect(&first800).to_csv(&schema));
    }

    fn sub_table(t: &Table, from: usize, to: usize) -> Table {
        let mut out = Table::new(t.schema().clone());
        let mut record = Vec::new();
        for r in from..to {
            t.row_into(r, &mut record);
            out.push_row_lenient(&record).unwrap();
        }
        out
    }
}
