//! Proposed corrections (sec. 5.3).
//!
//! "We replace a suspicious value according to the prediction of the
//! classifier with the highest error confidence." Corrections are
//! proposed from an [`AuditReport`] and can be applied to a table
//! in-place; the resulting quality change is scored by `dq-eval`
//! against the pollution log with the paper's correction measure
//! (sec. 4.3).

use crate::report::AuditReport;
use dq_table::{AttrIdx, RowIdx, Table, TableError, Value};

/// One proposed replacement.
#[derive(Debug, Clone, PartialEq)]
pub struct Correction {
    /// Target row.
    pub row: RowIdx,
    /// Target attribute.
    pub attr: AttrIdx,
    /// The suspicious value being replaced.
    pub old: Value,
    /// The proposed value.
    pub new: Value,
    /// Error confidence of the finding the proposal came from.
    pub confidence: f64,
}

/// Derive one correction per flagged row: the highest-confidence
/// finding wins (its classifier is "the classifier with the highest
/// error confidence" for that record).
///
/// The findings arrive ranked by descending confidence (with the same
/// tiebreaks `AuditReport::best_finding_for` resolves by), so a single
/// pass taking each row's *first* finding selects exactly the per-row
/// winners — O(findings) instead of the former per-suspicious-row
/// rescan of the whole finding list, with byte-identical output (a row
/// is flagged iff it has a finding, both gated on the same
/// `min_confidence`).
pub fn propose_corrections(report: &AuditReport) -> Vec<Correction> {
    let mut taken = vec![false; report.n_rows()];
    let mut out = Vec::new();
    for f in &report.findings {
        if taken[f.row] {
            continue;
        }
        taken[f.row] = true;
        out.push(Correction {
            row: f.row,
            attr: f.attr,
            old: f.observed,
            new: f.proposed,
            confidence: f.confidence,
        });
    }
    out.sort_by_key(|c| c.row);
    out
}

/// Render a correction list as CSV (one row per proposed replacement,
/// values shown with the schema's labels) — the `dq detect
/// --corrections` output a quality engineer reviews before applying.
pub fn corrections_to_csv(corrections: &[Correction], schema: &dq_table::Schema) -> String {
    let mut out = String::from("row,attribute,old,new,confidence\n");
    for c in corrections {
        out.push_str(&format!(
            "{},{},{},{},{}\n",
            c.row,
            schema.attr(c.attr).name,
            schema.display_value(c.attr, &c.old),
            schema.display_value(c.attr, &c.new),
            c.confidence
        ));
    }
    out
}

/// Apply corrections to a table in place. Returns the number applied.
///
/// This is the non-interactive path; "the correction of outliers
/// should always be supervised by a quality engineer" — interactive
/// callers filter the list first.
pub fn apply_corrections(
    table: &mut Table,
    corrections: &[Correction],
) -> Result<usize, TableError> {
    for c in corrections {
        table.set(c.row, c.attr, c.new)?;
    }
    Ok(corrections.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Finding;
    use dq_table::SchemaBuilder;

    fn table() -> Table {
        let schema =
            SchemaBuilder::new().nominal("a", ["x", "y"]).nominal("b", ["x", "y"]).build().unwrap();
        let mut t = Table::new(schema);
        t.push_row(&[Value::Nominal(0), Value::Nominal(1)]).unwrap();
        t.push_row(&[Value::Nominal(1), Value::Nominal(0)]).unwrap();
        t
    }

    fn report() -> AuditReport {
        AuditReport::new(
            vec![
                Finding {
                    row: 0,
                    attr: 1,
                    observed: Value::Nominal(1),
                    proposed: Value::Nominal(0),
                    confidence: 0.9,
                    support: 100.0,
                },
                Finding {
                    row: 0,
                    attr: 0,
                    observed: Value::Nominal(0),
                    proposed: Value::Nominal(1),
                    confidence: 0.85,
                    support: 50.0,
                },
            ],
            vec![0.9, 0.2],
            0.8,
        )
    }

    #[test]
    fn one_correction_per_flagged_row_highest_confidence() {
        let cs = propose_corrections(&report());
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].row, 0);
        assert_eq!(cs[0].attr, 1, "the 0.9-confidence finding wins");
        assert_eq!(cs[0].new, Value::Nominal(0));
    }

    #[test]
    fn corrections_apply_in_place() {
        let mut t = table();
        let cs = propose_corrections(&report());
        let n = apply_corrections(&mut t, &cs).unwrap();
        assert_eq!(n, 1);
        assert_eq!(t.get(0, 1), Value::Nominal(0));
        assert_eq!(t.get(1, 0), Value::Nominal(1), "unflagged rows untouched");
    }

    #[test]
    fn corrections_render_as_csv() {
        let t = table();
        let cs = propose_corrections(&report());
        let csv = corrections_to_csv(&cs, t.schema());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "row,attribute,old,new,confidence");
        assert_eq!(lines[1], "0,b,y,x,0.9");
    }

    #[test]
    fn out_of_range_corrections_error() {
        let mut t = table();
        let bad = Correction {
            row: 99,
            attr: 0,
            old: Value::Null,
            new: Value::Nominal(0),
            confidence: 1.0,
        };
        assert!(apply_corrections(&mut t, &[bad]).is_err());
    }
}
