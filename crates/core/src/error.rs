//! Error type for audit configuration and induction failures.

use dq_mining::MiningError;
use dq_table::TableError;
use std::fmt;

/// Errors raised while configuring or running an audit.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditError {
    /// A configuration parameter is out of range.
    BadConfig(String),
    /// Induction of one of the per-attribute classifiers failed.
    Induction {
        /// The class attribute whose classifier failed.
        class_attr: usize,
        /// The underlying mining error.
        source: MiningError,
    },
    /// The audited table has no rows.
    EmptyTable,
    /// The audited table has fewer than two columns: a dependency
    /// model predicts one attribute *from the others*, so a
    /// single-column schema admits no structure model at all (only a
    /// degenerate class prior).
    SingleColumn,
    /// Saving or loading a persisted structure model failed (version
    /// mismatch, malformed line, unsupported classifier family, …).
    Persistence(String),
    /// A persisted model was induced on a different relation: its
    /// embedded schema fingerprint does not match the schema it is
    /// being loaded against.
    SchemaFingerprint {
        /// The fingerprint of the schema the caller supplied.
        expected: u64,
        /// The fingerprint recorded in the model file.
        found: u64,
    },
    /// A table-layer failure while streaming or persisting (CSV cell
    /// errors, I/O, schema text).
    Table(TableError),
}

impl From<TableError> for AuditError {
    fn from(e: TableError) -> Self {
        AuditError::Table(e)
    }
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::BadConfig(m) => write!(f, "bad audit configuration: {m}"),
            AuditError::Induction { class_attr, source } => {
                write!(f, "inducing classifier for attribute {class_attr}: {source}")
            }
            AuditError::EmptyTable => write!(f, "cannot audit an empty table"),
            AuditError::SingleColumn => write!(
                f,
                "cannot audit a single-column table: a dependency model needs at least one base attribute"
            ),
            AuditError::Persistence(m) => write!(f, "structure model persistence: {m}"),
            AuditError::SchemaFingerprint { expected, found } => write!(
                f,
                "schema fingerprint mismatch: the model was induced on relation {found:016x}, \
                 but the supplied schema is {expected:016x} — refusing to audit the wrong relation"
            ),
            AuditError::Table(e) => write!(f, "table error: {e}"),
        }
    }
}

impl std::error::Error for AuditError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AuditError::Induction { source, .. } => Some(source),
            AuditError::Table(source) => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = AuditError::Induction { class_attr: 3, source: MiningError::EmptyTrainingSet };
        assert!(e.to_string().contains("attribute 3"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&AuditError::EmptyTable).is_none());
        assert!(AuditError::BadConfig("x".into()).to_string().contains("x"));
        assert!(AuditError::SingleColumn.to_string().contains("single-column"));
        assert!(std::error::Error::source(&AuditError::SingleColumn).is_none());
    }
}
