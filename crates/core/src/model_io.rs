//! Persisted structure models: train once, audit forever.
//!
//! The paper separates the two audit phases so that "the
//! time-consuming structure induction can be prepared off-line" while
//! "new data can be checked for deviations and loaded quickly" — which
//! only pays off if the induced structure model survives the process
//! that induced it. This module gives [`StructureModel`] a versioned,
//! std-only, human-diffable text format:
//!
//! ```text
//! dq-structure-model v1
//! schema-fingerprint = 91c5b01906c124f7
//! min-inst = 11
//! models = 2
//! config.min-confidence = 0.8
//! config.level = 0.95
//! …
//!
//! model attr = 1 (gbm)
//! class = nominal 2
//! deleted-rules = 0
//! tree = S a=0 k=nominal n=2 f=0.8895…,0.1104… c=16118,2000
//! tree = L c=16117,1 e=1
//! tree = L c=0,2000 e=1
//! rule brv = 404 -> gbm = 901 ; n=16118 conf=0.9995
//! rule brv = 501 -> gbm = 911 ; n=2000 conf=0.9995
//! end
//! ```
//!
//! Design points:
//!
//! * **Exactness.** The `tree =` lines serialize the induced C4.5
//!   trees *structurally* — every leaf count, missing-value routing
//!   fraction and threshold as a shortest-round-trip decimal — so a
//!   loaded model's deviation detection is **byte-identical** to the
//!   in-memory model's. (Rust's float formatting guarantees
//!   `format!("{x}").parse::<f64>() == x` for every finite `x`.)
//! * **Schema safety.** The header embeds the
//!   [`dq_table::Schema::fingerprint`] of the training relation;
//!   loading against a schema with a different fingerprint fails with
//!   [`AuditError::SchemaFingerprint`], so a model can never silently
//!   audit the wrong relation.
//! * **Provenance.** The full [`AuditConfig`] that produced the model
//!   is recorded in `config.*` lines and reconstructed on load (except
//!   `threads`, a runtime knob that does not influence results).
//! * **Readable constraints.** Each structure-model rule is also
//!   rendered as a `rule` line in the `dq_logic` grammar (`and`, `->`,
//!   with `<=`/`>=` sugar for thresholds and bins); loading re-parses
//!   every `rule` line through [`dq_logic::parse_rule`], so the
//!   human-facing rendering is validated against the schema on every
//!   round-trip. Rules the grammar cannot carry (e.g. labels with
//!   spaces) degrade to `# rule!` comments.
//!
//! Only C4.5 models are persistable: the other classifier families
//! (naive Bayes, kNN, …) produce no structure model in the paper's
//! sense and are rejected with [`AuditError::Persistence`].

use crate::auditor::{AttrModel, AuditConfig, StructureModel};
use crate::error::AuditError;
use dq_mining::{
    C45Config, ClassSpec, Condition, ConditionTest, DecisionTree, InducerKind, Node, Pruning,
    SplitCriterion, SplitKind, TreeRule,
};
use dq_table::{date::civil_from_days, AttrIdx, AttrType, Binning, Schema, TableError};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// The version line every model file starts with.
const HEADER: &str = "dq-structure-model v1";

// ---------------------------------------------------------------------------
// Saving
// ---------------------------------------------------------------------------

/// Render `model` in the canonical v1 text format.
pub fn render_model(model: &StructureModel, schema: &Schema) -> Result<String, AuditError> {
    let cfg = model.config();
    let c45 = match &cfg.inducer {
        InducerKind::C45(c45) => c45,
        other => {
            return Err(AuditError::Persistence(format!(
                "only C4.5 structure models are persistable, this model was induced with `{}`",
                other.name()
            )))
        }
    };
    let mut out = String::with_capacity(4096);
    out.push_str(HEADER);
    out.push('\n');
    out.push_str(&format!("schema-fingerprint = {:016x}\n", schema.fingerprint()));
    out.push_str(&format!("min-inst = {}\n", model.min_inst));
    out.push_str(&format!("models = {}\n", model.models.len()));
    out.push_str(&format!("config.min-confidence = {}\n", cfg.min_confidence));
    out.push_str(&format!("config.level = {}\n", cfg.level));
    out.push_str(&format!("config.bins = {}\n", cfg.bins));
    out.push_str(&format!("config.derive-min-inst = {}\n", cfg.derive_min_inst));
    out.push_str(&format!("config.delete-undetecting-rules = {}\n", cfg.delete_undetecting_rules));
    out.push_str(&format!("config.flag-nulls = {}\n", cfg.flag_nulls));
    out.push_str(&format!("config.audited-attrs = {}\n", render_attr_list(&cfg.audited_attrs)));
    out.push_str(&format!(
        "config.base-attr-overrides = {}\n",
        render_overrides(&cfg.base_attr_overrides)
    ));
    out.push_str("config.inducer = c4.5\n");
    out.push_str(&format!("config.c45.criterion = {}\n", render_criterion(c45.criterion)));
    out.push_str(&format!("config.c45.pruning = {}\n", render_pruning(c45.pruning)));
    out.push_str(&format!("config.c45.level = {}\n", c45.level));
    out.push_str(&format!("config.c45.min-inst = {}\n", c45.min_inst));
    out.push_str(&format!("config.c45.min-split = {}\n", c45.min_split));
    out.push_str(&format!("config.c45.min-branch = {}\n", c45.min_branch));
    out.push_str(&format!("config.c45.max-depth = {}\n", c45.max_depth));
    out.push_str(&format!("config.c45.min-detect-conf = {}\n", c45.min_detect_conf));
    for m in &model.models {
        out.push('\n');
        render_attr_model(&mut out, m, schema)?;
    }
    Ok(out)
}

fn render_attr_model(out: &mut String, m: &AttrModel, schema: &Schema) -> Result<(), AuditError> {
    let tree = m.classifier.as_c45().ok_or_else(|| {
        AuditError::Persistence(format!(
            "attribute {} is modelled by `{}`, which has no persistable structure",
            m.class_attr,
            m.classifier.describe()
        ))
    })?;
    out.push_str(&format!("model attr = {} ({})\n", m.class_attr, schema.attr(m.class_attr).name));
    match &m.spec {
        ClassSpec::Nominal { card } => out.push_str(&format!("class = nominal {card}\n")),
        ClassSpec::Binned { binning } => out.push_str(&format!(
            "class = binned {} {}\n",
            binning.n_bins,
            join_f64(&binning.edges)
        )),
    }
    out.push_str(&format!("deleted-rules = {}\n", m.deleted_rules));
    render_node(out, tree.root());
    for r in &m.rules {
        out.push_str(&render_rule_line(r, m, schema));
        out.push('\n');
    }
    out.push_str("end\n");
    Ok(())
}

fn render_node(out: &mut String, node: &Node) {
    match node {
        Node::Leaf { counts, enabled } => {
            out.push_str(&format!("tree = L c={} e={}\n", join_f64(counts), u8::from(*enabled)));
        }
        Node::Split { attr, kind, children, fractions, counts } => {
            let k = match kind {
                SplitKind::Nominal => "nominal".to_string(),
                SplitKind::Threshold(t) => format!("t:{t}"),
            };
            out.push_str(&format!(
                "tree = S a={attr} k={k} n={} f={} c={}\n",
                children.len(),
                join_f64(fractions),
                join_f64(counts)
            ));
            for c in children {
                render_node(out, c);
            }
        }
    }
}

/// Render one structure-model rule as a `rule` line in the `dq_logic`
/// grammar, falling back to a `# rule!` comment when the grammar
/// cannot carry it (empty premise, labels with spaces, …). Emitted
/// lines are guaranteed to re-parse: the renderer is checked against
/// [`dq_logic::parse_rule`] before committing to the `rule` form.
fn render_rule_line(rule: &TreeRule, m: &AttrModel, schema: &Schema) -> String {
    let annotation = format!("; n={:.0} conf={:.4}", rule.support, rule.max_error_confidence);
    if let Some(text) = render_parseable_rule(rule, m, schema) {
        if dq_logic::parse_rule(schema, &text).is_ok() {
            return format!("rule {text} {annotation}");
        }
    }
    let label = m.spec.label_of(schema, m.class_attr, rule.predicted);
    format!("# rule! {} {annotation}", rule.render(schema, m.class_attr, &label))
}

fn render_parseable_rule(rule: &TreeRule, m: &AttrModel, schema: &Schema) -> Option<String> {
    if rule.conditions.is_empty() {
        return None; // the grammar has no unconditional rule form
    }
    let premise = rule
        .conditions
        .iter()
        .map(|c| render_condition(c, schema))
        .collect::<Option<Vec<_>>>()?
        .join(" and ");
    let conclusion = render_conclusion(m.class_attr, &m.spec, rule.predicted, schema)?;
    Some(format!("{premise} -> {conclusion}"))
}

fn render_condition(c: &Condition, schema: &Schema) -> Option<String> {
    let name = &schema.attr(c.attr).name;
    match c.test {
        ConditionTest::Eq(code) => {
            let label = schema.attr(c.attr).label(code)?;
            Some(format!("{name} = {label}"))
        }
        ConditionTest::LessEq(t) => {
            Some(format!("{name} <= {}", render_ordered(c.attr, t, schema)?))
        }
        ConditionTest::Greater(t) => {
            Some(format!("{name} > {}", render_ordered(c.attr, t, schema)?))
        }
    }
}

/// A threshold/edge constant for an ordered attribute: dates render as
/// ISO (the grammar's date constant form) when the day number is
/// integral, numbers as plain decimals.
fn render_ordered(attr: AttrIdx, x: f64, schema: &Schema) -> Option<String> {
    match schema.attr(attr).ty {
        AttrType::Date { .. } => {
            if x.fract() != 0.0 || x.abs() > 1e15 {
                return None;
            }
            let (y, mo, d) = civil_from_days(x as i64);
            Some(format!("{y:04}-{mo:02}-{d:02}"))
        }
        _ => Some(format!("{x}")),
    }
}

/// The conclusion of a structure-model rule. Nominal classes conclude
/// `attr = label`; binned (numeric/date) classes conclude the bin's
/// value range via `<=`/`>` bounds, the all-values bin as `isnotnull`.
fn render_conclusion(
    class_attr: AttrIdx,
    spec: &ClassSpec,
    code: u32,
    schema: &Schema,
) -> Option<String> {
    let name = &schema.attr(class_attr).name;
    match spec {
        ClassSpec::Nominal { .. } => {
            let label = schema.attr(class_attr).label(code)?;
            Some(format!("{name} = {label}"))
        }
        ClassSpec::Binned { binning } => {
            let edges = &binning.edges;
            let b = code as usize;
            if edges.is_empty() {
                return Some(format!("{name} isnotnull"));
            }
            if b == 0 {
                return Some(format!(
                    "{name} <= {}",
                    render_ordered(class_attr, edges[0], schema)?
                ));
            }
            if b >= edges.len() {
                let last = render_ordered(class_attr, edges[edges.len() - 1], schema)?;
                return Some(format!("{name} > {last}"));
            }
            let lo = render_ordered(class_attr, edges[b - 1], schema)?;
            let hi = render_ordered(class_attr, edges[b], schema)?;
            Some(format!("{name} > {lo} and {name} <= {hi}"))
        }
    }
}

fn render_attr_list(list: &Option<Vec<AttrIdx>>) -> String {
    match list {
        None => "all".to_string(),
        Some(attrs) => {
            if attrs.is_empty() {
                "(empty)".to_string()
            } else {
                attrs.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(",")
            }
        }
    }
}

fn render_overrides(overrides: &[(AttrIdx, Vec<AttrIdx>)]) -> String {
    if overrides.is_empty() {
        return "none".to_string();
    }
    overrides
        .iter()
        .map(|(attr, bases)| {
            let bases = bases.iter().map(|b| b.to_string()).collect::<Vec<_>>().join(",");
            format!("{attr}:{bases}")
        })
        .collect::<Vec<_>>()
        .join(";")
}

fn render_criterion(c: SplitCriterion) -> &'static str {
    match c {
        SplitCriterion::InfoGain => "info-gain",
        SplitCriterion::GainRatio => "gain-ratio",
    }
}

fn render_pruning(p: Pruning) -> &'static str {
    match p {
        Pruning::None => "none",
        Pruning::PessimisticError => "pessimistic-error",
        Pruning::ExpectedErrorConfidence => "expected-error-confidence",
        Pruning::ExpectedErrorConfidenceRaw => "expected-error-confidence-raw",
    }
}

fn join_f64(xs: &[f64]) -> String {
    if xs.is_empty() {
        return "-".to_string();
    }
    xs.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(",")
}

// ---------------------------------------------------------------------------
// Loading
// ---------------------------------------------------------------------------

struct ModelReader<'a, R: BufRead> {
    schema: &'a Schema,
    lines: std::io::Lines<R>,
    line_no: usize,
}

impl<'a, R: BufRead> ModelReader<'a, R> {
    fn bad(&self, msg: impl Into<String>) -> AuditError {
        AuditError::Persistence(format!("line {}: {}", self.line_no, msg.into()))
    }

    /// Next line, trimmed of line endings; `None` at EOF.
    fn next_line(&mut self) -> Result<Option<String>, AuditError> {
        match self.lines.next() {
            None => Ok(None),
            Some(Err(e)) => Err(AuditError::Table(TableError::from(e))),
            Some(Ok(l)) => {
                self.line_no += 1;
                Ok(Some(l.trim_end_matches('\r').to_string()))
            }
        }
    }

    /// Next significant line: skips blanks and `#` comments.
    fn next_significant(&mut self) -> Result<Option<String>, AuditError> {
        loop {
            match self.next_line()? {
                None => return Ok(None),
                Some(l) if l.trim().is_empty() || l.trim_start().starts_with('#') => continue,
                Some(l) => return Ok(Some(l)),
            }
        }
    }

    fn parse_f64(&self, s: &str) -> Result<f64, AuditError> {
        s.parse::<f64>().map_err(|_| self.bad(format!("`{s}` is not a number")))
    }

    fn parse_usize(&self, s: &str) -> Result<usize, AuditError> {
        s.parse::<usize>().map_err(|_| self.bad(format!("`{s}` is not an unsigned integer")))
    }

    fn parse_bool(&self, s: &str) -> Result<bool, AuditError> {
        s.parse::<bool>().map_err(|_| self.bad(format!("`{s}` is not a boolean")))
    }

    fn parse_f64_list(&self, s: &str) -> Result<Vec<f64>, AuditError> {
        if s == "-" {
            return Ok(Vec::new());
        }
        s.split(',').map(|x| self.parse_f64(x)).collect()
    }
}

/// Read a structure model from its v1 text form, validating the schema
/// fingerprint, the format version and every `rule` line (through the
/// `dq_logic` parser) along the way.
pub fn parse_model<R: BufRead>(schema: &Schema, input: R) -> Result<StructureModel, AuditError> {
    let mut r = ModelReader { schema, lines: input.lines(), line_no: 0 };
    match r.next_line()? {
        Some(l) if l == HEADER => {}
        Some(l) => {
            return Err(r.bad(format!("expected header `{HEADER}`, got `{l}`")));
        }
        None => return Err(AuditError::Persistence("empty model file".into())),
    }

    // --- header key = value block -------------------------------------
    let mut header: Vec<(String, String)> = Vec::new();
    let mut first_model_line: Option<String> = None;
    while let Some(line) = r.next_significant()? {
        if line.starts_with("model attr") {
            first_model_line = Some(line);
            break;
        }
        let (key, value) = line
            .split_once(" = ")
            .ok_or_else(|| r.bad(format!("expected `key = value`, got `{line}`")))?;
        header.push((key.to_string(), value.to_string()));
    }
    let get = |key: &str| -> Result<&str, AuditError> {
        header
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| AuditError::Persistence(format!("missing header field `{key}`")))
    };

    let found = u64::from_str_radix(get("schema-fingerprint")?, 16)
        .map_err(|_| AuditError::Persistence("malformed schema fingerprint".into()))?;
    let expected = schema.fingerprint();
    if found != expected {
        return Err(AuditError::SchemaFingerprint { expected, found });
    }
    if get("config.inducer")? != "c4.5" {
        return Err(AuditError::Persistence(format!(
            "unsupported inducer `{}` in model file",
            get("config.inducer")?
        )));
    }
    let c45 = C45Config {
        criterion: parse_criterion(get("config.c45.criterion")?)?,
        pruning: parse_pruning(get("config.c45.pruning")?)?,
        level: r.parse_f64(get("config.c45.level")?)?,
        min_inst: r.parse_f64(get("config.c45.min-inst")?)?,
        min_split: r.parse_f64(get("config.c45.min-split")?)?,
        min_branch: r.parse_f64(get("config.c45.min-branch")?)?,
        max_depth: r.parse_usize(get("config.c45.max-depth")?)?,
        min_detect_conf: r.parse_f64(get("config.c45.min-detect-conf")?)?,
    };
    let config = AuditConfig {
        inducer: InducerKind::C45(c45),
        min_confidence: r.parse_f64(get("config.min-confidence")?)?,
        level: r.parse_f64(get("config.level")?)?,
        bins: r.parse_usize(get("config.bins")?)?,
        derive_min_inst: r.parse_bool(get("config.derive-min-inst")?)?,
        delete_undetecting_rules: r.parse_bool(get("config.delete-undetecting-rules")?)?,
        flag_nulls: r.parse_bool(get("config.flag-nulls")?)?,
        audited_attrs: parse_attr_list(get("config.audited-attrs")?)?,
        base_attr_overrides: parse_overrides(get("config.base-attr-overrides")?)?,
        threads: dq_exec::Parallelism::AUTO, // runtime knob, never persisted
        split_threads: dq_exec::Parallelism::serial(), // likewise
    };
    let min_inst = r.parse_f64(get("min-inst")?)?;
    let n_models = r.parse_usize(get("models")?)?;

    // --- model sections ------------------------------------------------
    let mut models = Vec::with_capacity(n_models);
    let mut section_line = first_model_line;
    while let Some(line) = section_line.take() {
        models.push(parse_attr_model(&mut r, &line, config.level)?);
        section_line = r.next_significant()?;
        if let Some(l) = &section_line {
            if !l.starts_with("model attr") {
                return Err(r.bad(format!("expected `model attr = …` or EOF, got `{l}`")));
            }
        }
    }
    if models.len() != n_models {
        return Err(AuditError::Persistence(format!(
            "header promises {n_models} models, file contains {}",
            models.len()
        )));
    }
    Ok(StructureModel { models, min_inst, config })
}

fn parse_attr_model<R: BufRead>(
    r: &mut ModelReader<'_, R>,
    header_line: &str,
    level: f64,
) -> Result<AttrModel, AuditError> {
    // `model attr = <idx> (<name>)` — the name is documentation only;
    // the fingerprint already pinned the schema.
    let rest = header_line
        .strip_prefix("model attr = ")
        .ok_or_else(|| r.bad(format!("expected `model attr = …`, got `{header_line}`")))?;
    let idx_text = rest.split_whitespace().next().unwrap_or("");
    let class_attr = r.parse_usize(idx_text)?;
    if class_attr >= r.schema.len() {
        return Err(r.bad(format!("model attribute {class_attr} out of schema range")));
    }

    let class_line =
        r.next_significant()?.ok_or_else(|| r.bad("unexpected EOF, expected `class = …`"))?;
    let spec = parse_class_spec(r, &class_line)?;

    let deleted_line = r
        .next_significant()?
        .ok_or_else(|| r.bad("unexpected EOF, expected `deleted-rules = …`"))?;
    let deleted_rules =
        r.parse_usize(deleted_line.strip_prefix("deleted-rules = ").ok_or_else(|| {
            r.bad(format!("expected `deleted-rules = …`, got `{deleted_line}`"))
        })?)?;

    // Tree lines (pre-order), then rule lines, then `end`.
    let mut specs: Vec<NodeSpec> = Vec::new();
    let mut n_rule_lines = 0usize;
    loop {
        let line =
            r.next_significant()?.ok_or_else(|| r.bad("unexpected EOF inside model section"))?;
        if line == "end" {
            break;
        }
        if let Some(node) = line.strip_prefix("tree = ") {
            if n_rule_lines > 0 {
                return Err(r.bad("`tree =` lines must precede `rule` lines"));
            }
            specs.push(parse_node_spec(r, node, spec.card() as usize)?);
        } else if let Some(rule) = line.strip_prefix("rule ") {
            // The human-facing constraint rendering must stay parseable
            // against the schema — the dq_logic round-trip guarantee.
            let text = rule.split(" ; ").next().unwrap_or(rule);
            dq_logic::parse_rule(r.schema, text)
                .map_err(|e| r.bad(format!("rule line does not parse: {e}")))?;
            n_rule_lines += 1;
        } else {
            return Err(r.bad(format!("unexpected line in model section: `{line}`")));
        }
    }
    if specs.is_empty() {
        return Err(r.bad("model section has no tree"));
    }
    let mut pos = 0usize;
    let root = build_node(r, &specs, &mut pos)?;
    if pos != specs.len() {
        return Err(r.bad(format!(
            "tree has {} trailing node line(s) not reachable from the root",
            specs.len() - pos
        )));
    }
    let tree = DecisionTree::from_parts(root, spec.card(), class_attr, level);
    let rules = tree.to_rules();
    // AttrModel::new compiles the flat evaluator here, at load time —
    // a loaded model detects at the same speed as a freshly induced one.
    Ok(AttrModel::new(class_attr, spec, Box::new(tree), rules, deleted_rules))
}

fn parse_class_spec<R: BufRead>(
    r: &ModelReader<'_, R>,
    line: &str,
) -> Result<ClassSpec, AuditError> {
    let rest = line
        .strip_prefix("class = ")
        .ok_or_else(|| r.bad(format!("expected `class = …`, got `{line}`")))?;
    let mut parts = rest.split_whitespace();
    match parts.next() {
        Some("nominal") => {
            let card = r.parse_usize(parts.next().unwrap_or(""))? as u32;
            if card == 0 {
                return Err(r.bad("nominal class with zero labels"));
            }
            Ok(ClassSpec::Nominal { card })
        }
        Some("binned") => {
            let n_bins = r.parse_usize(parts.next().unwrap_or(""))?;
            let edges = r.parse_f64_list(parts.next().unwrap_or("-"))?;
            if n_bins != edges.len() + 1 {
                return Err(r.bad(format!(
                    "binned class declares {n_bins} bins but carries {} edge(s)",
                    edges.len()
                )));
            }
            Ok(ClassSpec::Binned { binning: Binning { edges, n_bins } })
        }
        other => Err(r.bad(format!("unknown class spec `{}`", other.unwrap_or("")))),
    }
}

/// One parsed `tree =` line, before tree assembly.
enum NodeSpec {
    Leaf {
        counts: Vec<f64>,
        enabled: bool,
    },
    Split {
        attr: AttrIdx,
        kind: SplitKind,
        n_children: usize,
        fractions: Vec<f64>,
        counts: Vec<f64>,
    },
}

/// Parse one `tree =` line. `card` is the class cardinality declared by
/// the section's `class =` line: every count vector in the tree must
/// have exactly that arity, and threshold splits exactly two children —
/// the flat evaluator indexes count slices by class code, so a wrong
/// arity that slipped through here would panic at *detection* time
/// instead of failing the load with a typed error.
fn parse_node_spec<R: BufRead>(
    r: &ModelReader<'_, R>,
    text: &str,
    card: usize,
) -> Result<NodeSpec, AuditError> {
    let check_arity = |counts: &[f64]| -> Result<(), AuditError> {
        if counts.len() != card {
            return Err(r.bad(format!(
                "count vector has {} entr{}, class declares {card} code(s)",
                counts.len(),
                if counts.len() == 1 { "y" } else { "ies" }
            )));
        }
        Ok(())
    };
    let mut parts = text.split_whitespace();
    match parts.next() {
        Some("L") => {
            let mut counts = None;
            let mut enabled = None;
            for field in parts {
                if let Some(v) = field.strip_prefix("c=") {
                    counts = Some(r.parse_f64_list(v)?);
                } else if let Some(v) = field.strip_prefix("e=") {
                    enabled = Some(v == "1");
                } else {
                    return Err(r.bad(format!("unknown leaf field `{field}`")));
                }
            }
            let counts = counts.ok_or_else(|| r.bad("leaf without counts"))?;
            check_arity(&counts)?;
            Ok(NodeSpec::Leaf {
                counts,
                enabled: enabled.ok_or_else(|| r.bad("leaf without enabled flag"))?,
            })
        }
        Some("S") => {
            let (mut attr, mut kind, mut n, mut fractions, mut counts) =
                (None, None, None, None, None);
            for field in parts {
                if let Some(v) = field.strip_prefix("a=") {
                    attr = Some(r.parse_usize(v)?);
                } else if let Some(v) = field.strip_prefix("k=") {
                    kind = Some(if v == "nominal" {
                        SplitKind::Nominal
                    } else if let Some(t) = v.strip_prefix("t:") {
                        SplitKind::Threshold(r.parse_f64(t)?)
                    } else {
                        return Err(r.bad(format!("unknown split kind `{v}`")));
                    });
                } else if let Some(v) = field.strip_prefix("n=") {
                    n = Some(r.parse_usize(v)?);
                } else if let Some(v) = field.strip_prefix("f=") {
                    fractions = Some(r.parse_f64_list(v)?);
                } else if let Some(v) = field.strip_prefix("c=") {
                    counts = Some(r.parse_f64_list(v)?);
                } else {
                    return Err(r.bad(format!("unknown split field `{field}`")));
                }
            }
            let attr = attr.ok_or_else(|| r.bad("split without attribute"))?;
            if attr >= r.schema.len() {
                return Err(r.bad(format!("split attribute {attr} out of schema range")));
            }
            let kind = kind.ok_or_else(|| r.bad("split without kind"))?;
            let n_children = n.ok_or_else(|| r.bad("split without child count"))?;
            let fractions = fractions.ok_or_else(|| r.bad("split without fractions"))?;
            if n_children == 0 || fractions.len() != n_children {
                return Err(r.bad(format!(
                    "split declares {n_children} children but carries {} fraction(s)",
                    fractions.len()
                )));
            }
            // Threshold descent is hard-wired two-way (low/high); any
            // other arity is a corrupted file.
            if matches!(kind, SplitKind::Threshold(_)) && n_children != 2 {
                return Err(r.bad(format!(
                    "threshold split declares {n_children} children, must be exactly 2"
                )));
            }
            let counts = counts.ok_or_else(|| r.bad("split without counts"))?;
            check_arity(&counts)?;
            Ok(NodeSpec::Split { attr, kind, n_children, fractions, counts })
        }
        other => Err(r.bad(format!("unknown tree node kind `{}`", other.unwrap_or("")))),
    }
}

/// Assemble the pre-order node list back into a tree.
fn build_node<R: BufRead>(
    r: &ModelReader<'_, R>,
    specs: &[NodeSpec],
    pos: &mut usize,
) -> Result<Node, AuditError> {
    let spec =
        specs.get(*pos).ok_or_else(|| r.bad("tree ended early: a split is missing children"))?;
    *pos += 1;
    match spec {
        NodeSpec::Leaf { counts, enabled } => {
            Ok(Node::Leaf { counts: counts.clone(), enabled: *enabled })
        }
        NodeSpec::Split { attr, kind, n_children, fractions, counts } => {
            let mut children = Vec::with_capacity(*n_children);
            for _ in 0..*n_children {
                children.push(build_node(r, specs, pos)?);
            }
            Ok(Node::Split {
                attr: *attr,
                kind: kind.clone(),
                children,
                fractions: fractions.clone(),
                counts: counts.clone(),
            })
        }
    }
}

fn parse_attr_list(s: &str) -> Result<Option<Vec<AttrIdx>>, AuditError> {
    match s {
        "all" => Ok(None),
        "(empty)" => Ok(Some(Vec::new())),
        list => list
            .split(',')
            .map(|a| {
                a.parse::<usize>()
                    .map_err(|_| AuditError::Persistence(format!("bad attribute index `{a}`")))
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Some),
    }
}

fn parse_overrides(s: &str) -> Result<Vec<(AttrIdx, Vec<AttrIdx>)>, AuditError> {
    if s == "none" {
        return Ok(Vec::new());
    }
    s.split(';')
        .map(|entry| {
            let (attr, bases) = entry.split_once(':').ok_or_else(|| {
                AuditError::Persistence(format!("bad base-attr override `{entry}`"))
            })?;
            let attr = attr
                .parse::<usize>()
                .map_err(|_| AuditError::Persistence(format!("bad attribute index `{attr}`")))?;
            let bases = if bases.is_empty() {
                Vec::new()
            } else {
                bases
                    .split(',')
                    .map(|b| {
                        b.parse::<usize>().map_err(|_| {
                            AuditError::Persistence(format!("bad attribute index `{b}`"))
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?
            };
            Ok((attr, bases))
        })
        .collect()
}

fn parse_criterion(s: &str) -> Result<SplitCriterion, AuditError> {
    match s {
        "info-gain" => Ok(SplitCriterion::InfoGain),
        "gain-ratio" => Ok(SplitCriterion::GainRatio),
        other => Err(AuditError::Persistence(format!("unknown split criterion `{other}`"))),
    }
}

fn parse_pruning(s: &str) -> Result<Pruning, AuditError> {
    match s {
        "none" => Ok(Pruning::None),
        "pessimistic-error" => Ok(Pruning::PessimisticError),
        "expected-error-confidence" => Ok(Pruning::ExpectedErrorConfidence),
        "expected-error-confidence-raw" => Ok(Pruning::ExpectedErrorConfidenceRaw),
        other => Err(AuditError::Persistence(format!("unknown pruning strategy `{other}`"))),
    }
}

// ---------------------------------------------------------------------------
// Convenience surface on StructureModel
// ---------------------------------------------------------------------------

impl StructureModel {
    /// Write the model in the versioned text format (see the module
    /// docs). Fails for non-C4.5 models.
    pub fn save<W: Write>(&self, schema: &Schema, out: W) -> Result<(), AuditError> {
        let mut w = BufWriter::new(out);
        w.write_all(render_model(self, schema)?.as_bytes()).map_err(TableError::from)?;
        w.flush().map_err(TableError::from)?;
        Ok(())
    }

    /// Save to a file path.
    pub fn save_to_path(&self, schema: &Schema, path: impl AsRef<Path>) -> Result<(), AuditError> {
        let file = std::fs::File::create(path).map_err(TableError::from)?;
        self.save(schema, file)
    }

    /// Load a model previously written by [`StructureModel::save`],
    /// validating the format version, the schema fingerprint and every
    /// rendered rule line. The loaded model's deviation detection is
    /// byte-identical to the saved model's.
    pub fn load<R: BufRead>(schema: &Schema, input: R) -> Result<StructureModel, AuditError> {
        parse_model(schema, input)
    }

    /// Load from a file path.
    pub fn load_from_path(
        schema: &Schema,
        path: impl AsRef<Path>,
    ) -> Result<StructureModel, AuditError> {
        let file = std::fs::File::open(path).map_err(TableError::from)?;
        StructureModel::load(schema, BufReader::new(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auditor::Auditor;
    use dq_table::{SchemaBuilder, Table, Value};

    /// A mixed-type table with enough structure to grow real trees:
    /// `gbm` depends on `brv`, `n` depends on `x`, plus a date column.
    fn mixed_table() -> Table {
        let schema = SchemaBuilder::new()
            .nominal("brv", ["404", "501"])
            .nominal("gbm", ["901", "911"])
            .nominal("x", ["lo", "hi"])
            .numeric("n", 0.0, 100.0)
            .date_ymd("d", (2000, 1, 1), (2010, 1, 1))
            .build()
            .unwrap();
        let base = dq_table::date::days_from_civil(2001, 1, 1);
        let mut t = Table::new(schema);
        for i in 0..800 {
            let (brv, gbm) = if i % 3 == 0 { (1, 1) } else { (0, 0) };
            let (x, n) =
                if i % 2 == 0 { (0, 10.0 + (i % 7) as f64) } else { (1, 80.0 + (i % 7) as f64) };
            let d = if i % 11 == 0 { Value::Null } else { Value::Date(base + (i % 50) as i64) };
            t.push_row(&[
                Value::Nominal(brv),
                Value::Nominal(gbm),
                Value::Nominal(x),
                Value::Number(n),
                d,
            ])
            .unwrap();
        }
        t.push_row(&[
            Value::Nominal(0),
            Value::Nominal(1), // violates brv -> gbm
            Value::Nominal(0),
            Value::Number(95.0), // violates x -> n
            Value::Date(base),
        ])
        .unwrap();
        t
    }

    #[test]
    fn save_load_save_is_byte_stable() {
        let t = mixed_table();
        let auditor = Auditor::default();
        let model = auditor.induce(&t).unwrap();
        let first = render_model(&model, t.schema()).unwrap();
        let loaded = StructureModel::load(t.schema(), first.as_bytes()).unwrap();
        let second = render_model(&loaded, t.schema()).unwrap();
        assert_eq!(first, second, "save → load → save must be byte-stable");
    }

    #[test]
    fn loaded_model_detects_identically() {
        let t = mixed_table();
        let auditor = Auditor::default();
        let model = auditor.induce(&t).unwrap();
        let in_memory = auditor.detect(&model, &t);

        let mut buf = Vec::new();
        model.save(t.schema(), &mut buf).unwrap();
        let loaded = StructureModel::load(t.schema(), buf.as_slice()).unwrap();
        let from_disk = auditor.detect(&loaded, &t);

        assert_eq!(from_disk.findings, in_memory.findings);
        assert_eq!(from_disk.record_confidence, in_memory.record_confidence);
        assert_eq!(from_disk.min_confidence, in_memory.min_confidence);
        assert_eq!(loaded.n_rules(), model.n_rules());
        assert_eq!(loaded.min_inst, model.min_inst);
        assert_eq!(loaded.render(t.schema()), model.render(t.schema()));
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let t = mixed_table();
        let model = Auditor::default().induce(&t).unwrap();
        let mut buf = Vec::new();
        model.save(t.schema(), &mut buf).unwrap();
        let other = SchemaBuilder::new()
            .nominal("brv", ["404", "501"])
            .nominal("gbm", ["901", "911", "921"]) // one extra label
            .nominal("x", ["lo", "hi"])
            .numeric("n", 0.0, 100.0)
            .date_ymd("d", (2000, 1, 1), (2010, 1, 1))
            .build()
            .unwrap();
        match StructureModel::load(&other, buf.as_slice()) {
            Err(AuditError::SchemaFingerprint { expected, found }) => {
                assert_eq!(expected, other.fingerprint());
                assert_eq!(found, t.schema().fingerprint());
            }
            other => panic!("expected a fingerprint mismatch, got {other:?}"),
        }
    }

    #[test]
    fn rule_lines_parse_through_the_logic_grammar() {
        let t = mixed_table();
        let model = Auditor::default().induce(&t).unwrap();
        let text = render_model(&model, t.schema()).unwrap();
        let mut n_rules = 0;
        for line in text.lines() {
            if let Some(rule) = line.strip_prefix("rule ") {
                let rule_text = rule.split(" ; ").next().unwrap();
                dq_logic::parse_rule(t.schema(), rule_text)
                    .unwrap_or_else(|e| panic!("`{rule_text}` must parse: {e}"));
                n_rules += 1;
            }
        }
        assert!(n_rules > 0, "the mixed table must yield parseable constraint lines:\n{text}");
    }

    #[test]
    fn non_c45_models_are_not_persistable() {
        let t = mixed_table();
        let auditor = Auditor::new(crate::auditor::AuditConfig {
            inducer: InducerKind::NaiveBayes,
            ..Default::default()
        });
        let model = auditor.induce(&t).unwrap();
        match render_model(&model, t.schema()) {
            Err(AuditError::Persistence(msg)) => assert!(msg.contains("naive-bayes"), "{msg}"),
            other => panic!("expected a persistence error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_files_fail_with_located_errors() {
        let t = mixed_table();
        let schema = t.schema();
        let model = Auditor::default().induce(&t).unwrap();
        let good = render_model(&model, schema).unwrap();

        // Wrong version line.
        let err = StructureModel::load(schema.as_ref(), "dq-structure-model v9\n".as_bytes())
            .unwrap_err();
        assert!(matches!(err, AuditError::Persistence(_)), "{err:?}");
        // Empty file.
        assert!(StructureModel::load(schema.as_ref(), "".as_bytes()).is_err());
        // Truncated tree: drop the last leaf line.
        let truncated: String = {
            let mut lines: Vec<&str> = good.lines().collect();
            let last_leaf =
                lines.iter().rposition(|l| l.starts_with("tree = L")).expect("has leaves");
            lines.remove(last_leaf);
            lines.join("\n") + "\n"
        };
        assert!(StructureModel::load(schema.as_ref(), truncated.as_bytes()).is_err());
        // A corrupted rule line must be caught by the logic parser.
        let broken = good.replacen("rule ", "rule nonsense!! ", 1);
        if broken != good {
            let err = StructureModel::load(schema.as_ref(), broken.as_bytes()).unwrap_err();
            assert!(matches!(err, AuditError::Persistence(_)), "{err:?}");
        }
        // Header promises more models than the file carries.
        let fewer = good.replacen("models = ", "models = 9", 1);
        assert!(StructureModel::load(schema.as_ref(), fewer.as_bytes()).is_err());
    }

    #[test]
    fn binned_and_date_conclusions_render_within_the_grammar() {
        let t = mixed_table();
        let model = Auditor::default().induce(&t).unwrap();
        let text = render_model(&model, t.schema()).unwrap();
        // The numeric class attribute must produce range conclusions.
        assert!(
            text.lines().any(|l| l.starts_with("rule ") && l.contains("n <=")),
            "expected a binned conclusion for `n`:\n{text}"
        );
    }
}
