//! # dq-serve — the long-lived audit service
//!
//! The paper's asynchronous split — "the time-consuming structure
//! induction can be prepared off-line, new data can be checked for
//! deviations and loaded quickly" — taken to its operational
//! conclusion: a daemon. `dq serve` loads a directory of persisted
//! `.dqm` structure models (each beside its `.dqs` schema) into
//! resident [`AuditEngine`](dq_core::AuditEngine)s at startup and
//! answers audit requests over HTTP/1.1 for as long as it lives:
//!
//! * [`registry`] — the resident model collection, routed by model
//!   name or 16-hex schema fingerprint, with per-model lock-free
//!   service counters;
//! * [`server`] — acceptor + bounded connection queue + worker pool
//!   over `std::net::TcpListener`; `503` load-shedding (with
//!   `Retry-After`) at the queue bound, read/write timeouts and a
//!   per-request wall-clock deadline (`408`) on every socket,
//!   panic-isolated handlers, graceful drain
//!   ([`Server::begin_drain`]) and clean drain-then-join shutdown;
//! * [`http`] — the deliberately small HTTP/1.1 subset the daemon
//!   speaks (one request per connection, `Content-Length` bodies);
//! * [`client`] — a zero-dependency blocking client for tests and
//!   scripts, with bounded-backoff retry ([`client::post_with_retry`])
//!   that honors `Retry-After` and refuses to retry a draining server;
//! * [`signal`] — std-only `SIGTERM`/`SIGINT` handling via the
//!   self-pipe trick, so `dq serve` turns a `kill` into a drain.
//!
//! Responses are byte-identical to the batch tool: a streamed request
//! answers with exactly the CSV `dq detect` would have written for the
//! same body, because both run the same
//! [`AuditEngine`](dq_core::AuditEngine) scan internals
//! (`tests/serve_equivalence.rs` pins this under concurrency).
//!
//! Everything here is `std`-only: sockets, threads, a condvar queue —
//! no async runtime, no HTTP framework.

pub mod client;
pub mod http;
pub mod registry;
pub mod server;
pub mod signal;

pub use registry::{ModelEntry, ModelRegistry, ModelStats};
pub use server::{ServeConfig, Server};
pub use signal::TerminationSignal;

/// A serving-layer failure: registry startup problems, socket errors.
#[derive(Debug)]
pub enum ServeError {
    /// The model registry could not be assembled (missing or garbled
    /// files, duplicate names, duplicate schema fingerprints).
    Registry(String),
    /// A socket-layer failure.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Registry(m) => write!(f, "model registry: {m}"),
            ServeError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}
