//! A minimal blocking HTTP client for the server's own dialect.
//!
//! Exists so the test harnesses (and anything scripting the daemon
//! without curl) can speak to [`crate::server`] with zero
//! dependencies. Two shapes:
//!
//! * the one-shot helpers ([`get`], [`post`], [`request`]) open a
//!   fresh connection, send `Connection: close`, and read one
//!   response;
//! * [`Connection`] keeps one TCP connection open across any number
//!   of requests (HTTP/1.1 keep-alive), with split
//!   [`Connection::send`]/[`Connection::recv`] so callers can
//!   pipeline several requests before reading the responses.
//!
//! Both read `Content-Length` bodies — exactly what the server emits.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A received response: status code and raw body bytes.
#[derive(Debug)]
pub struct Response {
    /// The HTTP status code.
    pub status: u16,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// The body as UTF-8 (the server only emits UTF-8 text).
    pub fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).expect("server responses are UTF-8")
    }
}

/// `GET path` against `addr`.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<Response> {
    request(addr, "GET", path, &[], b"")
}

/// `POST path` with `body` against `addr`.
pub fn post(
    addr: SocketAddr,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<Response> {
    request(addr, "POST", path, headers, body)
}

/// One full request/response exchange on a fresh connection, closed
/// afterwards (`Connection: close` is sent).
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<Response> {
    let mut conn = Connection::open(addr)?;
    write_request(conn.reader.get_mut(), method, path, headers, body, true)?;
    conn.recv()
}

/// A persistent connection to the server: any number of
/// request/response exchanges ride one TCP stream. [`Connection::send`]
/// and [`Connection::recv`] are split so several requests can be
/// pipelined before the first response is read; responses come back in
/// request order.
#[derive(Debug)]
pub struct Connection {
    reader: BufReader<TcpStream>,
}

impl Connection {
    /// Connect to `addr` with a 60 s read timeout.
    pub fn open(addr: SocketAddr) -> io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        Ok(Connection { reader: BufReader::new(stream) })
    }

    /// Write one keep-alive request without reading its response.
    pub fn send(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<()> {
        write_request(self.reader.get_mut(), method, path, headers, body, false)
    }

    /// Write one `Connection: close` request — the server answers it
    /// and hangs up.
    pub fn send_close(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<()> {
        write_request(self.reader.get_mut(), method, path, headers, body, true)
    }

    /// Read the next pending response.
    pub fn recv(&mut self) -> io::Result<Response> {
        read_response(&mut self.reader)
    }

    /// One request/response exchange, connection kept open.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<Response> {
        self.send(method, path, headers, body)?;
        self.recv()
    }
}

/// Serialize one request onto `stream`.
fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: dq-serve\r\n");
    if close {
        head.push_str("Connection: close\r\n");
    }
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Parse one response off `reader` (status line, headers,
/// `Content-Length` body; read-to-close when the length is missing).
fn read_response(reader: &mut BufReader<TcpStream>) -> io::Result<Response> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status =
        status_line.split(' ').nth(1).and_then(|s| s.parse::<u16>().ok()).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad status line `{status_line}`"))
        })?;
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "headers cut short"));
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().ok();
            }
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut body = vec![0u8; n];
            reader.read_exact(&mut body)?;
            body
        }
        None => {
            let mut body = Vec::new();
            reader.read_to_end(&mut body)?;
            body
        }
    };
    Ok(Response { status, body })
}
