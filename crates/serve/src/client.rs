//! A minimal blocking HTTP client for the server's own dialect.
//!
//! Exists so the test harnesses (and anything scripting the daemon
//! without curl) can speak to [`crate::server`] with zero
//! dependencies. Two shapes:
//!
//! * the one-shot helpers ([`get`], [`post`], [`request`]) open a
//!   fresh connection, send `Connection: close`, and read one
//!   response;
//! * [`Connection`] keeps one TCP connection open across any number
//!   of requests (HTTP/1.1 keep-alive), with split
//!   [`Connection::send`]/[`Connection::recv`] so callers can
//!   pipeline several requests before reading the responses.
//!
//! Both read `Content-Length` bodies — exactly what the server emits.
//! [`post_with_retry`] adds the production posture: bounded retry with
//! exponential backoff and deterministic jitter on connect failures
//! and queue-full `503`s (honoring `Retry-After`), returning
//! immediately on a *draining* `503` — [`Unavailable`] is the typed
//! split between the two.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A received response: status code, headers, raw body bytes.
#[derive(Debug)]
pub struct Response {
    /// The HTTP status code.
    pub status: u16,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// The body as UTF-8 (the server only emits UTF-8 text).
    pub fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).expect("server responses are UTF-8")
    }

    /// First value of a (lower-case) header name, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// The `Retry-After` delay in seconds, when the server sent one
    /// (queue-full `503`s do).
    pub fn retry_after(&self) -> Option<u64> {
        self.header("retry-after")?.parse().ok()
    }

    /// Classify a `503`: transient backpressure worth retrying, or a
    /// draining server that will not come back. `None` for every other
    /// status.
    pub fn unavailable(&self) -> Option<Unavailable> {
        if self.status != 503 {
            return None;
        }
        if self.body_str().contains("draining") {
            Some(Unavailable::Draining)
        } else {
            Some(Unavailable::QueueFull { retry_after: self.retry_after() })
        }
    }
}

/// Why a `503` refused service — the two cases demand opposite client
/// behavior: queue-full is transient (back off and retry, honoring
/// `Retry-After`), draining is terminal for this server (fail over,
/// never retry here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Unavailable {
    /// The connection queue was full; retry after backing off.
    QueueFull {
        /// The server's `Retry-After` advice, seconds.
        retry_after: Option<u64>,
    },
    /// The server is draining; new connections will keep being refused.
    Draining,
}

/// Bounded retry with exponential backoff and deterministic jitter,
/// driving [`post_with_retry`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, the first included (so `1` means no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each retry after that.
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub cap: Duration,
    /// Jitter seed — the same seed replays the same sleep schedule,
    /// keeping retried runs as reproducible as everything else here.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `attempt` (0-based): exponential
    /// growth capped at `cap`, then deterministic full jitter down to
    /// half the window — the spread that keeps synchronized clients
    /// from re-stampeding a recovering server.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.base.saturating_mul(1u32 << attempt.min(16)).min(self.cap);
        let nanos = exp.as_nanos() as u64;
        let span = nanos / 2 + 1;
        // SplitMix64 over (seed, attempt): stateless and replayable.
        let mut x = self.seed.wrapping_add((attempt as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15));
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
        x ^= x >> 31;
        Duration::from_nanos(nanos / 2 + x % span)
    }
}

/// [`post`] with bounded retry: connect failures and queue-full `503`s
/// back off (honoring the server's `Retry-After` when it sends one)
/// and try again up to `policy.max_attempts` total attempts; every
/// other outcome — success, typed audit errors, and notably a
/// *draining* `503` — returns immediately, because a draining server
/// only gets worse.
pub fn post_with_retry(
    addr: SocketAddr,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    policy: &RetryPolicy,
) -> io::Result<Response> {
    let mut attempt = 0u32;
    loop {
        let outcome = post(addr, path, headers, body);
        let last = attempt + 1 >= policy.max_attempts.max(1);
        let delay = match &outcome {
            Ok(resp) => match resp.unavailable() {
                Some(Unavailable::QueueFull { retry_after }) if !last => match retry_after {
                    Some(secs) => Duration::from_secs(secs),
                    None => policy.backoff(attempt),
                },
                _ => return outcome,
            },
            Err(_) if !last => policy.backoff(attempt),
            Err(_) => return outcome,
        };
        std::thread::sleep(delay);
        attempt += 1;
    }
}

/// `GET path` against `addr`.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<Response> {
    request(addr, "GET", path, &[], b"")
}

/// `POST path` with `body` against `addr`.
pub fn post(
    addr: SocketAddr,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<Response> {
    request(addr, "POST", path, headers, body)
}

/// One full request/response exchange on a fresh connection, closed
/// afterwards (`Connection: close` is sent).
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<Response> {
    let mut conn = Connection::open(addr)?;
    let wrote = write_request(conn.reader.get_mut(), method, path, headers, body, true);
    // A server shedding load (queue-full or draining 503) answers and
    // closes before reading the whole request, so the send can die on
    // a broken pipe with the response already buffered. Read it
    // regardless; only when there is no response does the write error
    // matter.
    match conn.recv() {
        Ok(response) => Ok(response),
        Err(recv_err) => Err(wrote.err().unwrap_or(recv_err)),
    }
}

/// A persistent connection to the server: any number of
/// request/response exchanges ride one TCP stream. [`Connection::send`]
/// and [`Connection::recv`] are split so several requests can be
/// pipelined before the first response is read; responses come back in
/// request order.
#[derive(Debug)]
pub struct Connection {
    reader: BufReader<TcpStream>,
}

impl Connection {
    /// Connect to `addr` with a 60 s read timeout.
    pub fn open(addr: SocketAddr) -> io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        Ok(Connection { reader: BufReader::new(stream) })
    }

    /// Write one keep-alive request without reading its response.
    pub fn send(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<()> {
        write_request(self.reader.get_mut(), method, path, headers, body, false)
    }

    /// Write one `Connection: close` request — the server answers it
    /// and hangs up.
    pub fn send_close(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<()> {
        write_request(self.reader.get_mut(), method, path, headers, body, true)
    }

    /// Read the next pending response.
    pub fn recv(&mut self) -> io::Result<Response> {
        read_response(&mut self.reader)
    }

    /// One request/response exchange, connection kept open. Like
    /// [`request`], a send cut short by the server answering early
    /// (and closing) still yields the buffered response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<Response> {
        let sent = self.send(method, path, headers, body);
        match self.recv() {
            Ok(response) => Ok(response),
            Err(recv_err) => Err(sent.err().unwrap_or(recv_err)),
        }
    }
}

/// Serialize one request onto `stream`.
fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: dq-serve\r\n");
    if close {
        head.push_str("Connection: close\r\n");
    }
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Parse one response off `reader` (status line, headers,
/// `Content-Length` body; read-to-close when the length is missing).
fn read_response(reader: &mut BufReader<TcpStream>) -> io::Result<Response> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status =
        status_line.split(' ').nth(1).and_then(|s| s.parse::<u16>().ok()).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad status line `{status_line}`"))
        })?;
    let mut headers: Vec<(String, String)> = Vec::new();
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "headers cut short"));
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse::<usize>().ok();
            }
            headers.push((name, value));
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut body = vec![0u8; n];
            reader.read_exact(&mut body)?;
            body
        }
        None => {
            let mut body = Vec::new();
            reader.read_to_end(&mut body)?;
            body
        }
    };
    Ok(Response { status, headers, body })
}
