//! A deliberately small HTTP/1.1 subset over `std::io`.
//!
//! `dq serve` speaks exactly what its clients (curl, the test
//! harnesses, [`crate::client`]) need and nothing more:
//! `Content-Length` bodies and HTTP/1.1 keep-alive — any number of
//! requests per connection, closing when the peer asks
//! (`Connection: close`, or an HTTP/1.0 request without
//! `Connection: keep-alive`) or after an error, since framing is not
//! trustworthy past a malformed request. No chunked transfer coding,
//! no percent decoding — audit bodies are CSV, paths are plain model
//! names. This is a protocol adapter, not a web framework; everything
//! interesting happens in [`crate::server`].

use std::io::{self, BufRead, Write};

/// A parsed request: method, split path/query, lower-cased headers,
/// raw body bytes.
#[derive(Debug)]
pub struct Request {
    /// The request method (`GET`, `POST`, …), upper case as sent.
    pub method: String,
    /// The path component, without the query string.
    pub path: String,
    /// `key=value` pairs of the query string, in order. Flags without
    /// `=` parse as `(flag, "")`.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (`Content-Length` bytes).
    pub body: Vec<u8>,
    /// `false` only for `HTTP/1.0` requests; drives the keep-alive
    /// default.
    pub http11: bool,
}

impl Request {
    /// First value of a (lower-case) header name, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// First value of a query key, if present.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// `true` when the query carries `key` with a truthy value
    /// (`1`/`true`/empty flag form).
    pub fn query_flag(&self, key: &str) -> bool {
        matches!(self.query_value(key), Some("" | "1" | "true"))
    }

    /// Whether the connection should stay open after this exchange:
    /// an explicit `Connection` header wins, otherwise HTTP/1.1
    /// defaults to keep-alive and HTTP/1.0 to close.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// A request that could not be read. The server maps these to 4xx
/// responses (or drops the connection when nothing arrived at all).
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed before sending a complete request.
    ConnectionClosed,
    /// The request line or a header is malformed.
    Malformed(String),
    /// The declared body exceeds the server's limit.
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The server's cap.
        limit: usize,
    },
    /// An I/O failure (including read timeouts).
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::ConnectionClosed => write!(f, "connection closed mid-request"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "request body of {declared} bytes exceeds the {limit}-byte limit")
            }
            HttpError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Read one request from `stream`. Bodies larger than `max_body`
/// bytes are rejected without being read.
pub fn read_request<R: BufRead>(stream: &mut R, max_body: usize) -> Result<Request, HttpError> {
    let mut line = String::new();
    if stream.read_line(&mut line)? == 0 {
        return Err(HttpError::ConnectionClosed);
    }
    let line = line.trim_end_matches(['\r', '\n']);
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1.") && !m.is_empty() => (m, t, v),
        _ => return Err(HttpError::Malformed(format!("bad request line `{line}`"))),
    };
    let http11 = version != "HTTP/1.0";
    let (path, query_text) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_text
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let mut header_line = String::new();
        if stream.read_line(&mut header_line)? == 0 {
            return Err(HttpError::ConnectionClosed);
        }
        let header_line = header_line.trim_end_matches(['\r', '\n']);
        if header_line.is_empty() {
            break;
        }
        let (name, value) = header_line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header `{header_line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0usize,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad content-length `{v}`")))?,
    };
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge { declared: content_length, limit: max_body });
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).map_err(|_| HttpError::ConnectionClosed)?;

    Ok(Request { method: method.to_string(), path: path.to_string(), query, headers, body, http11 })
}

/// The reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete response. `close` announces whether the server
/// will hang up after this exchange (`Connection: close`) or read the
/// next request off the same connection (`Connection: keep-alive`).
pub fn write_response<W: Write>(
    stream: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    write_response_with(stream, status, content_type, body, close, &[])
}

/// [`write_response`] plus arbitrary extra headers — the door through
/// which backpressure metadata (`Retry-After` on queue-full `503`s)
/// reaches the wire.
pub fn write_response_with<W: Write>(
    stream: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
    extra_headers: &[(&str, &str)],
) -> io::Result<()> {
    let connection = if close { "close" } else { "keep-alive" };
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        reason(status),
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    stream.write_all(b"\r\n")?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<Request, HttpError> {
        read_request(&mut text.as_bytes(), 1 << 20)
    }

    #[test]
    fn parses_request_line_query_headers_and_body() {
        let req = parse(
            "POST /audit/quis/stream?corrections=1&x HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\nX-Schema-Fingerprint: 00ff\r\n\r\nbody",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/audit/quis/stream");
        assert!(req.query_flag("corrections"));
        assert_eq!(req.query_value("x"), Some(""));
        assert_eq!(req.header("x-schema-fingerprint"), Some("00ff"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn get_without_body_parses() {
        let req = parse("GET /stats HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/stats");
        assert!(req.body.is_empty());
        assert!(req.query.is_empty());
    }

    #[test]
    fn malformed_requests_are_typed() {
        assert!(matches!(parse(""), Err(HttpError::ConnectionClosed)));
        assert!(matches!(parse("nonsense\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: zap\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        // Declared body larger than the limit is rejected before reading.
        let err =
            read_request(&mut "POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n".as_bytes(), 10)
                .unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge { declared: 100, limit: 10 }));
        // Truncated body.
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nhi"),
            Err(HttpError::ConnectionClosed)
        ));
    }

    #[test]
    fn responses_carry_length_and_connection_intent() {
        let mut out = Vec::new();
        write_response(&mut out, 409, "text/plain", b"error: nope\n", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 409 Conflict\r\n"), "{text}");
        assert!(text.contains("Content-Length: 12\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("error: nope\n"), "{text}");

        let mut out = Vec::new();
        write_response(&mut out, 200, "text/csv", b"ok\n", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
    }

    #[test]
    fn extra_headers_ride_the_response_head() {
        let mut out = Vec::new();
        write_response_with(&mut out, 503, "text/plain", b"busy\n", true, &[("Retry-After", "2")])
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{text}");
        assert!(text.contains("Retry-After: 2\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nbusy\n"), "{text}");
        assert_eq!(reason(408), "Request Timeout");
    }

    #[test]
    fn keep_alive_follows_version_and_connection_header() {
        // HTTP/1.1 defaults to keep-alive; an explicit header wins.
        assert!(parse("GET / HTTP/1.1\r\n\r\n").unwrap().keep_alive());
        assert!(!parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().keep_alive());
        assert!(!parse("GET / HTTP/1.1\r\nConnection: CLOSE\r\n\r\n").unwrap().keep_alive());
        // HTTP/1.0 defaults to close; opt-in keep-alive is honored.
        assert!(!parse("GET / HTTP/1.0\r\n\r\n").unwrap().keep_alive());
        assert!(parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap().keep_alive());
        // An unknown Connection value falls back to the version default.
        assert!(parse("GET / HTTP/1.1\r\nConnection: upgrade\r\n\r\n").unwrap().keep_alive());
    }
}
