//! The model registry: every persisted model the server keeps resident.
//!
//! `dq serve` is the paper's asynchronous-auditing story turned into a
//! daemon: structure induction ran offline (`dq induce`), and the
//! resulting `.dqm` artifacts are loaded **once** at startup into
//! [`AuditEngine`]s — flat trees and compiled rule programs resident —
//! then shared read-only across every request thread. The registry
//! owns that collection and answers the routing question: which engine
//! does this request belong to, by model name or by the 16-hex schema
//! fingerprint the model embeds?
//!
//! On-disk layout is pairwise: each `<name>.dqm` model sits next to
//! the `<name>.dqs` schema it was induced against (the layout
//! `dq generate`/`dq induce` already produce). Load order is sorted by
//! name so startup is deterministic; duplicate names and duplicate
//! schema fingerprints are startup errors, not first-request
//! surprises.

use crate::ServeError;
use dq_core::AuditEngine;
use std::collections::HashMap;
use std::fs::File;
use std::io::BufReader;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-model service counters, updated lock-free by request threads
/// and reported at `GET /stats`.
#[derive(Debug, Default)]
pub struct ModelStats {
    /// Requests routed to this model (every outcome included).
    pub requests: AtomicU64,
    /// Records audited across those requests.
    pub records: AtomicU64,
    /// Violations (report findings) detected.
    pub violations: AtomicU64,
    /// Requests that ended in an error response (4xx/5xx).
    pub errors: AtomicU64,
}

impl ModelStats {
    /// A `(requests, records, violations, errors)` snapshot.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.requests.load(Ordering::Relaxed),
            self.records.load(Ordering::Relaxed),
            self.violations.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
        )
    }
}

/// One resident model: its name (the file stem), its engine, its
/// counters.
#[derive(Debug)]
pub struct ModelEntry {
    /// The model name requests address it by (`<name>.dqm`'s stem).
    pub name: String,
    /// The resident detection engine.
    pub engine: AuditEngine,
    /// Service counters.
    pub stats: ModelStats,
}

impl ModelEntry {
    /// The schema fingerprint requests may route by, in the canonical
    /// 16-hex form.
    pub fn fingerprint_hex(&self) -> String {
        format!("{:016x}", self.engine.fingerprint())
    }
}

/// The resident model collection, indexed by name and by schema
/// fingerprint.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    entries: Vec<Arc<ModelEntry>>,
    by_name: HashMap<String, usize>,
    by_fingerprint: HashMap<u64, usize>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ModelRegistry::default()
    }

    /// Register `engine` under `name`. Duplicate names and duplicate
    /// schema fingerprints are rejected: a fingerprint shared by two
    /// models would make fingerprint routing ambiguous.
    pub fn insert(
        &mut self,
        name: impl Into<String>,
        engine: AuditEngine,
    ) -> Result<(), ServeError> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(ServeError::Registry(format!("duplicate model name `{name}`")));
        }
        let fp = engine.fingerprint();
        if let Some(&idx) = self.by_fingerprint.get(&fp) {
            return Err(ServeError::Registry(format!(
                "schema fingerprint {fp:016x} of model `{name}` collides with model `{}` — \
                 fingerprint routing would be ambiguous",
                self.entries[idx].name
            )));
        }
        let idx = self.entries.len();
        self.by_name.insert(name.clone(), idx);
        self.by_fingerprint.insert(fp, idx);
        self.entries.push(Arc::new(ModelEntry { name, engine, stats: ModelStats::default() }));
        Ok(())
    }

    /// Load every `<name>.dqm` / `<name>.dqs` pair under `dir`, sorted
    /// by name. A `.dqm` without its schema, an unreadable or garbled
    /// file, and duplicate names/fingerprints are all startup errors.
    pub fn load_dir(dir: impl AsRef<Path>) -> Result<Self, ServeError> {
        Self::load_dir_with_threads(dir, dq_exec::Parallelism::serial())
    }

    /// [`ModelRegistry::load_dir`] with the per-request detection
    /// thread knob ([`AuditEngine::with_threads`], any
    /// [`Parallelism`](dq_exec::Parallelism) convertible):
    /// [`serial`](dq_exec::Parallelism::serial) — the `load_dir`
    /// default — serves each request on its handler thread; larger
    /// values shard each scan too.
    pub fn load_dir_with_threads(
        dir: impl AsRef<Path>,
        detect_threads: impl Into<dq_exec::Parallelism>,
    ) -> Result<Self, ServeError> {
        let dir = dir.as_ref();
        let detect_threads = detect_threads.into();
        let at = |e: &dyn std::fmt::Display| format!("{}: {e}", dir.display());
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir).map_err(|e| ServeError::Registry(at(&e)))? {
            let path = entry.map_err(|e| ServeError::Registry(at(&e)))?.path();
            if path.extension().and_then(|x| x.to_str()) == Some("dqm") {
                match path.file_stem().and_then(|s| s.to_str()) {
                    Some(stem) => names.push(stem.to_string()),
                    None => {
                        return Err(ServeError::Registry(format!(
                            "{}: model file name is not valid UTF-8",
                            path.display()
                        )))
                    }
                }
            }
        }
        if names.is_empty() {
            return Err(ServeError::Registry(format!(
                "{}: no .dqm model files found",
                dir.display()
            )));
        }
        names.sort();
        let mut registry = ModelRegistry::new();
        for name in names {
            let model_path = dir.join(format!("{name}.dqm"));
            let schema_path = dir.join(format!("{name}.dqs"));
            let fail = |path: &Path, e: &dyn std::fmt::Display| {
                ServeError::Registry(format!("{}: {e}", path.display()))
            };
            let schema_file = File::open(&schema_path).map_err(|e| fail(&schema_path, &e))?;
            let schema = dq_table::read_schema(BufReader::new(schema_file))
                .map_err(|e| fail(&schema_path, &e))?;
            let engine = AuditEngine::load_from_path(schema, &model_path)
                .map_err(|e| fail(&model_path, &e))?
                .with_threads(detect_threads);
            registry.insert(name, engine)?;
        }
        Ok(registry)
    }

    /// Resolve a request's model key: the model name, or the schema
    /// fingerprint as 16 hex digits.
    pub fn resolve(&self, key: &str) -> Option<&Arc<ModelEntry>> {
        if let Some(&idx) = self.by_name.get(key) {
            return Some(&self.entries[idx]);
        }
        if key.len() == 16 {
            if let Ok(fp) = u64::from_str_radix(key, 16) {
                if let Some(&idx) = self.by_fingerprint.get(&fp) {
                    return Some(&self.entries[idx]);
                }
            }
        }
        None
    }

    /// The resident models, in load (name) order.
    pub fn entries(&self) -> &[Arc<ModelEntry>] {
        &self.entries
    }

    /// Number of resident models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no model is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_core::Auditor;
    use dq_table::{SchemaBuilder, Table, Value};

    fn engine(labels: [&str; 2]) -> AuditEngine {
        let schema =
            SchemaBuilder::new().nominal("a", labels).nominal("b", ["x", "y"]).build().unwrap();
        let mut t = Table::new(schema);
        for i in 0..200u32 {
            let c = i % 2;
            t.push_row(&[Value::Nominal(c), Value::Nominal(c)]).unwrap();
        }
        let model = Auditor::default().induce(&t).unwrap();
        AuditEngine::new(model, t.schema().clone())
    }

    #[test]
    fn resolves_by_name_and_fingerprint() {
        let mut reg = ModelRegistry::new();
        let e = engine(["p", "q"]);
        let fp = format!("{:016x}", e.fingerprint());
        reg.insert("first", e).unwrap();
        reg.insert("second", engine(["r", "s"])).unwrap();
        assert_eq!(reg.resolve("first").unwrap().name, "first");
        assert_eq!(reg.resolve(&fp).unwrap().name, "first");
        assert_eq!(reg.resolve("second").unwrap().name, "second");
        assert!(reg.resolve("third").is_none());
        assert!(reg.resolve("0000000000000000").is_none());
    }

    #[test]
    fn duplicate_name_is_rejected() {
        let mut reg = ModelRegistry::new();
        reg.insert("m", engine(["p", "q"])).unwrap();
        let err = reg.insert("m", engine(["r", "s"])).unwrap_err();
        assert!(err.to_string().contains("duplicate model name `m`"), "{err}");
    }

    #[test]
    fn duplicate_fingerprint_is_rejected() {
        // Two models over byte-identical schemas share a fingerprint.
        let mut reg = ModelRegistry::new();
        reg.insert("m1", engine(["p", "q"])).unwrap();
        let err = reg.insert("m2", engine(["p", "q"])).unwrap_err();
        let text = err.to_string();
        assert!(
            text.contains("collides with model `m1`") && text.contains("fingerprint"),
            "{text}"
        );
        // The registry still answers for the model that won.
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.resolve("m1").unwrap().name, "m1");
    }
}
