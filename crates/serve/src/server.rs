//! The audit server: acceptor, bounded queue, worker pool, routing.
//!
//! One acceptor thread takes connections off a [`TcpListener`] and
//! pushes them onto a bounded queue; `workers` handler threads pop and
//! serve them, answering requests back-to-back on the same connection
//! (HTTP/1.1 keep-alive) until the client hangs up, asks for
//! `Connection: close`, stalls past the read timeout, or sends
//! something malformed. When the queue is full the acceptor answers
//! `503` inline (with a `Retry-After` hint) and drops the connection —
//! that is the whole backpressure story, load is shed at the door
//! instead of queueing unboundedly. Read *and* write timeouts bound
//! every socket op, a per-request wall-clock deadline turns
//! slow-trickling requests into `408`s (`DeadlineStream`), and
//! [`Server::begin_drain`] winds the daemon down gracefully: new
//! connections get a distinct `503 … draining` while in-flight and
//! queued requests finish. Handlers run the resident
//! [`AuditEngine`](dq_core::AuditEngine)s behind `Arc`s (no locks on
//! the hot path; the engine is `Sync` by construction) and are wrapped
//! in `catch_unwind`, so a panicking request costs one `500`, not the
//! daemon.
//!
//! ## Routes
//!
//! | route | body | answer |
//! |---|---|---|
//! | `GET /health` | — | `ok` |
//! | `GET /stats` | — | per-model counters, CSV |
//! | `POST /audit/{model}/record` | one headerless CSV record | audit report CSV |
//! | `POST /audit/{model}/batch` | headerless CSV records | audit report CSV |
//! | `POST /audit/{model}/stream` | full CSV (header + records) | audit report CSV |
//!
//! `{model}` is a registry name or a 16-hex schema fingerprint.
//! `?corrections=1` returns proposed corrections instead of the raw
//! report. An `X-Schema-Fingerprint` header asserts the schema the
//! client believes it is sending; a mismatch is `409` with the
//! [`AuditError::SchemaFingerprint`] message. CSV cell errors come
//! back as `400` carrying the table layer's message verbatim —
//! including the 1-based line number of the offending cell.

use crate::http::{self, HttpError, Request};
use crate::registry::{ModelEntry, ModelRegistry};
use dq_core::{corrections_to_csv, propose_corrections, AuditError, AuditReport};
use std::collections::VecDeque;
use std::io::{self, BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs. The defaults suit the tests and small
/// deployments; `dq serve` exposes each as a flag.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Handler threads popping the connection queue.
    pub workers: usize,
    /// Connection-queue bound; the acceptor answers `503` beyond it.
    pub queue_depth: usize,
    /// Rows per [`dq_table::CsvChunkReader`] chunk on the stream
    /// endpoint (bounded memory per in-flight request). Per-request
    /// detection threads are a registry knob
    /// ([`ModelRegistry::load_dir_with_threads`]); engines default to
    /// one thread per request — concurrency comes from the request
    /// fan-out, not from sharding each scan.
    pub chunk_rows: usize,
    /// Largest accepted request body, bytes (`413` beyond it).
    pub max_body: usize,
    /// Socket read timeout, so a stalled client cannot pin a worker.
    pub read_timeout: Option<Duration>,
    /// Socket write timeout, so a client that stops *reading* cannot
    /// pin a worker mid-response either.
    pub write_timeout: Option<Duration>,
    /// Per-request wall-clock deadline, armed at the first byte of a
    /// request line and cleared once the request is parsed. A body
    /// trickling in slower than this answers `408 Request Timeout`
    /// instead of holding a worker; idle keep-alive waits between
    /// requests are governed by `read_timeout` alone. `None` disables
    /// the deadline.
    pub request_deadline: Option<Duration>,
    /// Advisory `Retry-After` seconds carried by queue-full `503`s —
    /// the client-visible half of the backpressure story.
    pub retry_after_secs: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_depth: 64,
            chunk_rows: 4096,
            max_body: 64 << 20,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            request_deadline: Some(Duration::from_secs(60)),
            retry_after_secs: 1,
        }
    }
}

/// State shared by the acceptor and the workers.
struct Shared {
    registry: ModelRegistry,
    config: ServeConfig,
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    stop: AtomicBool,
    /// Drain mode: new connections are refused with a distinct `503`,
    /// in-flight requests finish, `/health` reports `draining`.
    draining: AtomicBool,
}

/// A running audit server. Dropping the handle leaks the threads;
/// call [`Server::shutdown`] for a clean stop (used by every test),
/// or [`Server::join`] to serve until the process dies (the CLI).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port), load-free:
    /// `registry` is already resident. Spawns the acceptor and
    /// `config.workers` handler threads and returns immediately.
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: ModelRegistry,
        config: ServeConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            registry,
            config,
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
        });

        let acceptor = {
            let shared = shared.clone();
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let workers = (0..workers)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(Server { addr, shared, acceptor, workers })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The resident registry (for reading counters).
    pub fn registry(&self) -> &ModelRegistry {
        &self.shared.registry
    }

    /// Flip into drain mode without stopping: the acceptor refuses new
    /// connections with `503` bodies saying `draining` (distinct from
    /// queue-full shedding), `/health` answers `503 draining`, `/stats`
    /// stays readable on existing connections, in-flight and queued
    /// requests finish, and every response while draining carries
    /// `Connection: close` so keep-alive connections wind down. Call
    /// [`Server::shutdown`] afterwards for the full stop.
    pub fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Whether [`Server::begin_drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Stop accepting, drain the queue, join every thread. In-flight
    /// and already-queued requests complete; nothing is dropped.
    pub fn shutdown(self) {
        self.begin_drain();
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake the acceptor out of its blocking accept.
        let _ = TcpStream::connect(self.addr);
        let _ = self.acceptor.join();
        // Wake every idle worker; each drains the queue before exiting.
        drop(self.shared.queue.lock().unwrap());
        self.shared.ready.notify_all();
        for w in self.workers {
            let _ = w.join();
        }
    }

    /// Serve until the process dies (the CLI foreground mode).
    pub fn join(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Accept connections and enqueue them; shed load inline at the
/// queue bound.
fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        // Shed responses are a few dozen bytes, but bound the write
        // anyway so a peer that never reads cannot pin the acceptor.
        let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
        if shared.draining.load(Ordering::SeqCst) {
            let mut stream = stream;
            let _ = http::write_response(
                &mut stream,
                503,
                "text/plain; charset=utf-8",
                b"error: server is draining, not accepting new connections\n",
                true,
            );
            continue;
        }
        let mut queue = shared.queue.lock().unwrap();
        if queue.len() >= shared.config.queue_depth {
            drop(queue);
            let mut stream = stream;
            let retry_after = shared.config.retry_after_secs.to_string();
            let _ = http::write_response_with(
                &mut stream,
                503,
                "text/plain; charset=utf-8",
                b"error: request queue is full, retry later\n",
                true,
                &[("Retry-After", retry_after.as_str())],
            );
            continue;
        }
        queue.push_back(stream);
        drop(queue);
        shared.ready.notify_one();
    }
}

/// Pop connections and serve them until stop + empty queue.
fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if shared.stop.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared.ready.wait(queue).unwrap();
            }
        };
        let Some(stream) = stream else { return };
        // A panicking handler costs this request a 500, not the daemon.
        let result = catch_unwind(AssertUnwindSafe(|| handle_connection(shared, stream)));
        if let Err(_panic) = result {
            // The stream moved into the handler; nothing to answer on.
        }
    }
}

/// A [`Read`] wrapper enforcing the per-request wall-clock deadline.
///
/// The deadline arms at the first byte of a request and is cleared by
/// [`DeadlineStream::disarm`] before the next one, so idle keep-alive
/// waits face only the plain read timeout. Each read bounds its socket
/// timeout by the time remaining; when that runs out — a body
/// trickling in slower than the deadline, or a stall mid-request —
/// the read fails and [`DeadlineStream::deadline_hit`] latches, which
/// the connection loop answers with `408`.
struct DeadlineStream {
    stream: TcpStream,
    read_timeout: Option<Duration>,
    deadline: Option<Duration>,
    /// Arm time: the instant the current request's first byte arrived.
    started: Option<Instant>,
    deadline_hit: bool,
}

impl DeadlineStream {
    fn new(stream: TcpStream, read_timeout: Option<Duration>, deadline: Option<Duration>) -> Self {
        DeadlineStream { stream, read_timeout, deadline, started: None, deadline_hit: false }
    }

    /// Clear the armed deadline: the current request is fully read.
    fn disarm(&mut self) {
        self.started = None;
    }

    fn deadline_hit(&self) -> bool {
        self.deadline_hit
    }

    fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    fn expire(&mut self) -> io::Error {
        self.deadline_hit = true;
        io::Error::new(io::ErrorKind::TimedOut, "request deadline exceeded")
    }
}

impl Read for DeadlineStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let effective = match (self.deadline, self.started) {
            (Some(deadline), Some(started)) => {
                let Some(remaining) = deadline.checked_sub(started.elapsed()) else {
                    return Err(self.expire());
                };
                Some(self.read_timeout.map_or(remaining, |t| t.min(remaining)))
            }
            _ => self.read_timeout,
        };
        // Zero means "no timeout" to the socket layer; clamp up so an
        // almost-expired deadline still times out instead of blocking.
        self.stream.set_read_timeout(effective.map(|t| t.max(Duration::from_millis(1))))?;
        match self.stream.read(buf) {
            Ok(n) => {
                if n > 0 && self.started.is_none() {
                    self.started = Some(Instant::now());
                }
                Ok(n)
            }
            // A timeout while a request is partially read: the peer is
            // too slow for the deadline (SO_RCVTIMEO surfaces as either
            // kind depending on platform).
            Err(e)
                if matches!(e.kind(), io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock)
                    && self.started.is_some() =>
            {
                Err(self.expire())
            }
            Err(e) => Err(e),
        }
    }
}

/// Serve one connection: requests are read, routed and answered in a
/// loop until the peer closes, asks for `Connection: close` (or is
/// HTTP/1.0 without opting in), stalls, or breaks framing — a
/// malformed request or a handler panic gets its error response and
/// then the connection closes, since the byte stream can no longer be
/// trusted. A request that outlives the configured deadline gets `408`
/// before the close; while the server drains, every response forces
/// `Connection: close` so keep-alive clients wind down.
fn handle_connection(shared: &Shared, stream: TcpStream) {
    // A socket whose writes cannot be bounded must not be served at
    // all — an unbounded write hands a never-reading client a worker,
    // which is the pinning this timeout exists to prevent.
    if let Err(e) = stream.set_write_timeout(shared.config.write_timeout) {
        eprintln!("dq-serve: dropping connection: set_write_timeout failed: {e}");
        return;
    }
    let mut reader = BufReader::new(DeadlineStream::new(
        stream,
        shared.config.read_timeout,
        shared.config.request_deadline,
    ));
    loop {
        reader.get_mut().disarm();
        let request = match http::read_request(&mut reader, shared.config.max_body) {
            Ok(request) => request,
            Err(err) => {
                if reader.get_ref().deadline_hit() {
                    respond_error(
                        reader.get_mut().stream_mut(),
                        408,
                        "request not fully received within the server's deadline",
                    );
                    return;
                }
                let (status, message) = match err {
                    // Nothing arrived (or the peer vanished): nothing
                    // to say.
                    HttpError::ConnectionClosed | HttpError::Io(_) => return,
                    HttpError::Malformed(_) => (400, err.to_string()),
                    HttpError::BodyTooLarge { .. } => (413, err.to_string()),
                };
                respond_error(reader.get_mut().stream_mut(), status, &message);
                return;
            }
        };
        let keep_alive = request.keep_alive() && !shared.draining.load(Ordering::SeqCst);
        let outcome = catch_unwind(AssertUnwindSafe(|| route(shared, &request)));
        let written = match outcome {
            Ok((status, content_type, body)) => http::write_response(
                reader.get_mut().stream_mut(),
                status,
                content_type,
                &body,
                !keep_alive,
            )
            .is_ok(),
            Err(_panic) => {
                respond_error(reader.get_mut().stream_mut(), 500, "internal error while auditing");
                false
            }
        };
        if !keep_alive || !written {
            return;
        }
    }
}

fn respond_error(stream: &mut TcpStream, status: u16, message: &str) {
    let body = format!("error: {message}\n");
    let _ =
        http::write_response(stream, status, "text/plain; charset=utf-8", body.as_bytes(), true);
}

type RouteAnswer = (u16, &'static str, Vec<u8>);

fn error_answer(status: u16, message: impl std::fmt::Display) -> RouteAnswer {
    (status, "text/plain; charset=utf-8", format!("error: {message}\n").into_bytes())
}

/// Dispatch a parsed request to its handler.
fn route(shared: &Shared, request: &Request) -> RouteAnswer {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["health"] => match request.method.as_str() {
            // While draining, health flips so load balancers and
            // probes steer away; /stats stays readable for the final
            // reconciliation.
            "GET" if shared.draining.load(Ordering::SeqCst) => {
                (503, "text/plain; charset=utf-8", b"draining\n".to_vec())
            }
            "GET" => (200, "text/plain; charset=utf-8", b"ok\n".to_vec()),
            _ => error_answer(405, "use GET /health"),
        },
        ["stats"] => match request.method.as_str() {
            "GET" => (200, "text/csv; charset=utf-8", stats_csv(&shared.registry).into_bytes()),
            _ => error_answer(405, "use GET /stats"),
        },
        ["audit", key, kind @ ("record" | "batch" | "stream")] => {
            if request.method != "POST" {
                return error_answer(405, format!("use POST /audit/{key}/{kind}"));
            }
            let Some(entry) = shared.registry.resolve(key) else {
                return error_answer(
                    404,
                    format!("unknown model `{key}` (not a registered name or 16-hex schema fingerprint)"),
                );
            };
            entry.stats.requests.fetch_add(1, Ordering::Relaxed);
            let answer = audit(shared, entry, kind, request);
            if answer.0 != 200 {
                entry.stats.errors.fetch_add(1, Ordering::Relaxed);
            }
            answer
        }
        _ => error_answer(404, format!("no route for `{}`", request.path)),
    }
}

/// The audit endpoints proper: fingerprint assertion, body decode,
/// detection, report rendering.
fn audit(shared: &Shared, entry: &ModelEntry, kind: &str, request: &Request) -> RouteAnswer {
    if let Some(claimed) = request.header("x-schema-fingerprint") {
        let Ok(claimed_fp) = u64::from_str_radix(claimed, 16) else {
            return error_answer(
                400,
                format!("malformed X-Schema-Fingerprint `{claimed}` (expected 16 hex digits)"),
            );
        };
        let found = entry.engine.fingerprint();
        if claimed_fp != found {
            return error_answer(
                409,
                AuditError::SchemaFingerprint { expected: claimed_fp, found },
            );
        }
    }
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return error_answer(400, "request body is not valid UTF-8");
    };
    let engine = &entry.engine;
    let result = match kind {
        "record" => {
            let line = body.trim_end_matches(['\r', '\n']);
            if line.contains('\n') {
                return error_answer(
                    400,
                    "the record endpoint takes exactly one CSV record; POST several to /batch",
                );
            }
            engine.detect_record_csv(line)
        }
        "batch" => {
            // A micro-batch of headerless records: audited as a
            // synthetic CSV whose header is the schema's attribute
            // line, so cell errors report 1-based lines with the
            // implied header as line 1 (first record = line 2).
            let names: Vec<&str> =
                engine.schema().attributes().iter().map(|a| a.name.as_str()).collect();
            let csv = format!("{}\n{}", names.join(","), body);
            engine.detect_csv(csv.as_bytes(), shared.config.chunk_rows)
        }
        // A full CSV stream, header included: lines map 1:1 to the
        // client's own file.
        _ => engine.detect_csv(body.as_bytes(), shared.config.chunk_rows),
    };
    match result {
        Ok(report) => {
            entry.stats.records.fetch_add(report.n_rows() as u64, Ordering::Relaxed);
            entry.stats.violations.fetch_add(report.findings.len() as u64, Ordering::Relaxed);
            let csv = render_report(engine, &report, request.query_flag("corrections"));
            (200, "text/csv; charset=utf-8", csv.into_bytes())
        }
        Err(err) => {
            let status = match err {
                AuditError::SchemaFingerprint { .. } => 409,
                AuditError::Table(_) => 400,
                _ => 500,
            };
            error_answer(status, err)
        }
    }
}

/// The response body: the audit report CSV, or the proposed
/// corrections when `?corrections=1`.
fn render_report(engine: &dq_core::AuditEngine, report: &AuditReport, corrections: bool) -> String {
    if corrections {
        corrections_to_csv(&propose_corrections(report), engine.schema())
    } else {
        report.to_csv(engine.schema())
    }
}

/// The `GET /stats` body: one row per resident model.
fn stats_csv(registry: &ModelRegistry) -> String {
    let mut out = String::from("model,fingerprint,requests,records,violations,errors\n");
    for entry in registry.entries() {
        let (requests, records, violations, errors) = entry.stats.snapshot();
        out.push_str(&format!(
            "{},{},{requests},{records},{violations},{errors}\n",
            entry.name,
            entry.fingerprint_hex(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use dq_core::Auditor;
    use dq_table::{SchemaBuilder, Table, Value};
    use std::io::Write as _;

    fn fixture() -> (ModelRegistry, Table) {
        let schema = SchemaBuilder::new()
            .nominal("brv", ["404", "501"])
            .nominal("gbm", ["901", "911"])
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..400u32 {
            let c = i % 2;
            t.push_row(&[Value::Nominal(c), Value::Nominal(c)]).unwrap();
        }
        t.push_row(&[Value::Nominal(0), Value::Nominal(1)]).unwrap();
        let model = Auditor::default().induce(&t).unwrap();
        let engine = dq_core::AuditEngine::new(model, t.schema().clone());
        let mut registry = ModelRegistry::new();
        registry.insert("calls", engine).unwrap();
        (registry, t)
    }

    fn start(registry: ModelRegistry) -> Server {
        Server::bind("127.0.0.1:0", registry, ServeConfig::default()).unwrap()
    }

    #[test]
    fn health_stats_and_audit_round_trip() {
        let (registry, table) = fixture();
        let server = start(registry);
        let addr = server.addr();

        let health = client::get(addr, "/health").unwrap();
        assert_eq!((health.status, health.body_str()), (200, "ok\n"));

        // Stream the whole table; the response is the in-memory report.
        let mut csv = Vec::new();
        dq_table::write_csv(&table, &mut csv).unwrap();
        let resp = client::post(addr, "/audit/calls/stream", &[], &csv).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_str());
        let expected = server.registry().resolve("calls").unwrap().engine.detect(&table);
        assert_eq!(resp.body_str(), expected.to_csv(table.schema()));

        // One deviant record alone, by name and by fingerprint.
        let record = "501,901";
        for key in ["calls", &server.registry().entries()[0].fingerprint_hex()] {
            let resp = client::post(addr, &format!("/audit/{key}/record"), &[], record.as_bytes())
                .unwrap();
            assert_eq!(resp.status, 200, "{}", resp.body_str());
            assert!(resp.body_str().lines().count() > 1, "deviant record must be flagged");
        }

        let stats = client::get(addr, "/stats").unwrap();
        let line = stats
            .body_str()
            .lines()
            .find(|l| l.starts_with("calls,"))
            .expect("stats row")
            .to_string();
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields[2], "3", "requests: {line}");
        assert_eq!(fields[3], "403", "records: {line}");
        assert_eq!(fields[5], "0", "errors: {line}");

        server.shutdown();
    }

    #[test]
    fn error_statuses_are_typed() {
        let (registry, _) = fixture();
        let fp = registry.entries()[0].fingerprint_hex();
        let server = start(registry);
        let addr = server.addr();

        // Unknown model: 404, immediately.
        let resp = client::post(addr, "/audit/nope/record", &[], b"404,901").unwrap();
        assert_eq!(resp.status, 404);
        assert!(resp.body_str().contains("unknown model `nope`"), "{}", resp.body_str());

        // Fingerprint mismatch: 409 with both fingerprints in the body.
        let resp = client::post(
            addr,
            "/audit/calls/record",
            &[("X-Schema-Fingerprint", "0000000000000000")],
            b"404,901",
        )
        .unwrap();
        assert_eq!(resp.status, 409);
        assert!(resp.body_str().contains("schema fingerprint mismatch"), "{}", resp.body_str());
        assert!(resp.body_str().contains(&fp), "{}", resp.body_str());

        // Matching fingerprint: accepted.
        let resp = client::post(
            addr,
            "/audit/calls/record",
            &[("X-Schema-Fingerprint", fp.as_str())],
            b"404,901",
        )
        .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_str());

        // A bad cell: 400 carrying the table layer's 1-based line.
        let resp =
            client::post(addr, "/audit/calls/stream", &[], b"brv,gbm\n404,901\n404,zap\n").unwrap();
        assert_eq!(resp.status, 400);
        assert!(resp.body_str().contains("line 3"), "{}", resp.body_str());

        // Wrong method: 405.
        let resp = client::get(addr, "/audit/calls/record").unwrap();
        assert_eq!(resp.status, 405);

        // No route: 404.
        let resp = client::get(addr, "/audit/calls/everything").unwrap();
        assert_eq!(resp.status, 404);

        // Errors were counted (the 409 + the 400; the 404s never
        // resolved a model).
        let errors =
            server.registry().resolve("calls").unwrap().stats.errors.load(Ordering::Relaxed);
        assert_eq!(errors, 2);

        server.shutdown();
    }

    #[test]
    fn drain_refuses_new_connections_but_finishes_in_flight_work() {
        let (registry, table) = fixture();
        let server = start(registry);
        let addr = server.addr();

        // Open keep-alive connections *before* the drain begins, and
        // warm each one so a worker actually holds it (a connect alone
        // can still be sitting in the accept backlog when the drain
        // flag flips, and would then be refused at the door).
        let mut audit_conn = client::Connection::open(addr).unwrap();
        let mut stats_conn = client::Connection::open(addr).unwrap();
        let mut health_conn = client::Connection::open(addr).unwrap();
        for conn in [&mut audit_conn, &mut stats_conn, &mut health_conn] {
            assert_eq!(conn.request("GET", "/health", &[], b"").unwrap().status, 200);
        }

        server.begin_drain();
        assert!(server.is_draining());

        // In-flight work still completes — and reconciles in /stats.
        let mut csv = Vec::new();
        dq_table::write_csv(&table, &mut csv).unwrap();
        let resp = audit_conn.request("POST", "/audit/calls/stream", &[], &csv).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_str());
        let stats = stats_conn.request("GET", "/stats", &[], b"").unwrap();
        assert_eq!(stats.status, 200, "stats must stay readable while draining");
        let line = stats.body_str().lines().find(|l| l.starts_with("calls,")).unwrap();
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!((fields[2], fields[3]), ("1", "401"), "exact reconciliation: {line}");

        // Health flips to draining for probes on live connections.
        let health = health_conn.request("GET", "/health", &[], b"").unwrap();
        assert_eq!((health.status, health.body_str()), (503, "draining\n"));
        assert_eq!(health.unavailable(), Some(client::Unavailable::Draining));

        // New connections are refused with the *distinct* draining 503.
        let refused = client::get(addr, "/health").unwrap();
        assert_eq!(refused.status, 503);
        assert_eq!(refused.unavailable(), Some(client::Unavailable::Draining));
        assert!(refused.retry_after().is_none(), "draining is not a retry-later situation");

        // Drain responses force the connection closed: a second request
        // on the same connection must fail.
        assert!(health_conn.request("GET", "/health", &[], b"").is_err());

        server.shutdown();
    }

    #[test]
    fn slow_requests_answer_408_and_full_queues_carry_retry_after() {
        let (registry, _) = fixture();
        let config = ServeConfig {
            workers: 1,
            queue_depth: 1,
            read_timeout: Some(Duration::from_secs(1)),
            request_deadline: Some(Duration::from_secs(2)),
            retry_after_secs: 7,
            ..ServeConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", registry, config).unwrap();
        let addr = server.addr();

        // Pin the single worker: promise a body, then trickle it slower
        // than the wall-clock deadline (but faster than the read
        // timeout — only the deadline can catch this client).
        let mut slow = TcpStream::connect(addr).unwrap();
        slow.write_all(b"POST /audit/calls/record HTTP/1.1\r\nContent-Length: 64\r\n\r\n404,")
            .unwrap();
        slow.flush().unwrap();
        let trickle = {
            let mut slow = slow.try_clone().unwrap();
            std::thread::spawn(move || {
                for _ in 0..15 {
                    std::thread::sleep(Duration::from_millis(150));
                    if slow.write_all(b"x").and_then(|()| slow.flush()).is_err() {
                        break;
                    }
                }
            })
        };

        // Give the worker time to pop the slow connection, then fill
        // the one queue slot, then overflow it.
        std::thread::sleep(Duration::from_millis(200));
        let _queued = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(200));
        let resp = client::get(addr, "/health").unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.retry_after(), Some(7), "queue-full must advise Retry-After");
        assert_eq!(
            resp.unavailable(),
            Some(client::Unavailable::QueueFull { retry_after: Some(7) })
        );

        // The pinned worker answers 408 once the deadline lapses —
        // typed, not a silent hangup.
        slow.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut answer = Vec::new();
        std::io::Read::read_to_end(&mut slow, &mut answer).unwrap();
        let text = String::from_utf8(answer).unwrap();
        assert!(text.starts_with("HTTP/1.1 408 "), "{text}");
        assert!(text.contains("deadline"), "{text}");
        trickle.join().unwrap();

        server.shutdown();
    }

    #[test]
    fn client_retry_backs_off_on_queue_full_and_stops_on_drain() {
        // Deterministic backoff schedule: same seed, same sleeps.
        let policy = client::RetryPolicy {
            base: Duration::from_millis(64),
            cap: Duration::from_millis(256),
            ..client::RetryPolicy::default()
        };
        for attempt in 0..4 {
            let a = policy.backoff(attempt);
            let b = policy.backoff(attempt);
            assert_eq!(a, b, "jitter must be replayable");
            let exp = policy.base.saturating_mul(1 << attempt).min(policy.cap);
            assert!(
                a >= exp / 2 && a <= exp,
                "attempt {attempt}: {a:?} outside [{exp:?}/2, {exp:?}]"
            );
        }

        // Against a draining server, retry returns the 503 immediately
        // (one attempt, no backoff sleeps).
        let (registry, _) = fixture();
        let server = start(registry);
        server.begin_drain();
        let started = std::time::Instant::now();
        let resp = client::post_with_retry(
            server.addr(),
            "/audit/calls/record",
            &[],
            b"404,901",
            &client::RetryPolicy { base: Duration::from_secs(5), ..Default::default() },
        )
        .unwrap();
        assert_eq!(resp.unavailable(), Some(client::Unavailable::Draining));
        assert!(started.elapsed() < Duration::from_secs(2), "draining must not be retried");
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly_and_port_closes() {
        let (registry, _) = fixture();
        let server = start(registry);
        let addr = server.addr();
        assert_eq!(client::get(addr, "/health").unwrap().status, 200);
        server.shutdown();
        // The listener is gone: a fresh connection must fail (or be
        // refused on read).
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(stream) => {
                // Connect can win a race with OS-level backlog teardown;
                // the request must still go unanswered.
                let mut stream = stream;
                let _ = stream.write_all(b"GET /health HTTP/1.1\r\n\r\n");
                let mut buf = Vec::new();
                let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                let n = std::io::Read::read_to_end(&mut stream, &mut buf).unwrap_or(0);
                assert_eq!(n, 0, "no worker should answer after shutdown");
            }
        }
    }
}
