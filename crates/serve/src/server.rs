//! The audit server: acceptor, bounded queue, worker pool, routing.
//!
//! One acceptor thread takes connections off a [`TcpListener`] and
//! pushes them onto a bounded queue; `workers` handler threads pop and
//! serve them, answering requests back-to-back on the same connection
//! (HTTP/1.1 keep-alive) until the client hangs up, asks for
//! `Connection: close`, stalls past the read timeout, or sends
//! something malformed. When the queue is full the acceptor answers
//! `503` inline and drops the connection — that is the whole
//! backpressure story, load is shed at the door instead of queueing
//! unboundedly. Handlers run the resident
//! [`AuditEngine`](dq_core::AuditEngine)s behind `Arc`s (no locks on
//! the hot path; the engine is `Sync` by construction) and are wrapped
//! in `catch_unwind`, so a panicking request costs one `500`, not the
//! daemon.
//!
//! ## Routes
//!
//! | route | body | answer |
//! |---|---|---|
//! | `GET /health` | — | `ok` |
//! | `GET /stats` | — | per-model counters, CSV |
//! | `POST /audit/{model}/record` | one headerless CSV record | audit report CSV |
//! | `POST /audit/{model}/batch` | headerless CSV records | audit report CSV |
//! | `POST /audit/{model}/stream` | full CSV (header + records) | audit report CSV |
//!
//! `{model}` is a registry name or a 16-hex schema fingerprint.
//! `?corrections=1` returns proposed corrections instead of the raw
//! report. An `X-Schema-Fingerprint` header asserts the schema the
//! client believes it is sending; a mismatch is `409` with the
//! [`AuditError::SchemaFingerprint`] message. CSV cell errors come
//! back as `400` carrying the table layer's message verbatim —
//! including the 1-based line number of the offending cell.

use crate::http::{self, HttpError, Request};
use crate::registry::{ModelEntry, ModelRegistry};
use dq_core::{corrections_to_csv, propose_corrections, AuditError, AuditReport};
use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs. The defaults suit the tests and small
/// deployments; `dq serve` exposes each as a flag.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Handler threads popping the connection queue.
    pub workers: usize,
    /// Connection-queue bound; the acceptor answers `503` beyond it.
    pub queue_depth: usize,
    /// Rows per [`dq_table::CsvChunkReader`] chunk on the stream
    /// endpoint (bounded memory per in-flight request). Per-request
    /// detection threads are a registry knob
    /// ([`ModelRegistry::load_dir_with_threads`]); engines default to
    /// one thread per request — concurrency comes from the request
    /// fan-out, not from sharding each scan.
    pub chunk_rows: usize,
    /// Largest accepted request body, bytes (`413` beyond it).
    pub max_body: usize,
    /// Socket read timeout, so a stalled client cannot pin a worker.
    pub read_timeout: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_depth: 64,
            chunk_rows: 4096,
            max_body: 64 << 20,
            read_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// State shared by the acceptor and the workers.
struct Shared {
    registry: ModelRegistry,
    config: ServeConfig,
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    stop: AtomicBool,
}

/// A running audit server. Dropping the handle leaks the threads;
/// call [`Server::shutdown`] for a clean stop (used by every test),
/// or [`Server::join`] to serve until the process dies (the CLI).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port), load-free:
    /// `registry` is already resident. Spawns the acceptor and
    /// `config.workers` handler threads and returns immediately.
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: ModelRegistry,
        config: ServeConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            registry,
            config,
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            stop: AtomicBool::new(false),
        });

        let acceptor = {
            let shared = shared.clone();
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let workers = (0..workers)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(Server { addr, shared, acceptor, workers })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The resident registry (for reading counters).
    pub fn registry(&self) -> &ModelRegistry {
        &self.shared.registry
    }

    /// Stop accepting, drain the queue, join every thread. In-flight
    /// and already-queued requests complete; nothing is dropped.
    pub fn shutdown(self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake the acceptor out of its blocking accept.
        let _ = TcpStream::connect(self.addr);
        let _ = self.acceptor.join();
        // Wake every idle worker; each drains the queue before exiting.
        drop(self.shared.queue.lock().unwrap());
        self.shared.ready.notify_all();
        for w in self.workers {
            let _ = w.join();
        }
    }

    /// Serve until the process dies (the CLI foreground mode).
    pub fn join(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Accept connections and enqueue them; shed load inline at the
/// queue bound.
fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let mut queue = shared.queue.lock().unwrap();
        if queue.len() >= shared.config.queue_depth {
            drop(queue);
            let mut stream = stream;
            let _ = http::write_response(
                &mut stream,
                503,
                "text/plain; charset=utf-8",
                b"error: request queue is full, retry later\n",
                true,
            );
            continue;
        }
        queue.push_back(stream);
        drop(queue);
        shared.ready.notify_one();
    }
}

/// Pop connections and serve them until stop + empty queue.
fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if shared.stop.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared.ready.wait(queue).unwrap();
            }
        };
        let Some(stream) = stream else { return };
        // A panicking handler costs this request a 500, not the daemon.
        let result = catch_unwind(AssertUnwindSafe(|| handle_connection(shared, stream)));
        if let Err(_panic) = result {
            // The stream moved into the handler; nothing to answer on.
        }
    }
}

/// Serve one connection: requests are read, routed and answered in a
/// loop until the peer closes, asks for `Connection: close` (or is
/// HTTP/1.0 without opting in), stalls, or breaks framing — a
/// malformed request or a handler panic gets its error response and
/// then the connection closes, since the byte stream can no longer be
/// trusted.
fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(shared.config.read_timeout);
    let mut reader = BufReader::new(stream);
    loop {
        let request = match http::read_request(&mut reader, shared.config.max_body) {
            Ok(request) => request,
            Err(err) => {
                let (status, message) = match err {
                    // Nothing arrived (or the peer vanished): nothing
                    // to say.
                    HttpError::ConnectionClosed | HttpError::Io(_) => return,
                    HttpError::Malformed(_) => (400, err.to_string()),
                    HttpError::BodyTooLarge { .. } => (413, err.to_string()),
                };
                respond_error(reader.get_mut(), status, &message);
                return;
            }
        };
        let keep_alive = request.keep_alive();
        let outcome = catch_unwind(AssertUnwindSafe(|| route(shared, &request)));
        let written = match outcome {
            Ok((status, content_type, body)) => {
                http::write_response(reader.get_mut(), status, content_type, &body, !keep_alive)
                    .is_ok()
            }
            Err(_panic) => {
                respond_error(reader.get_mut(), 500, "internal error while auditing");
                false
            }
        };
        if !keep_alive || !written {
            return;
        }
    }
}

fn respond_error(stream: &mut TcpStream, status: u16, message: &str) {
    let body = format!("error: {message}\n");
    let _ =
        http::write_response(stream, status, "text/plain; charset=utf-8", body.as_bytes(), true);
}

type RouteAnswer = (u16, &'static str, Vec<u8>);

fn error_answer(status: u16, message: impl std::fmt::Display) -> RouteAnswer {
    (status, "text/plain; charset=utf-8", format!("error: {message}\n").into_bytes())
}

/// Dispatch a parsed request to its handler.
fn route(shared: &Shared, request: &Request) -> RouteAnswer {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["health"] => match request.method.as_str() {
            "GET" => (200, "text/plain; charset=utf-8", b"ok\n".to_vec()),
            _ => error_answer(405, "use GET /health"),
        },
        ["stats"] => match request.method.as_str() {
            "GET" => (200, "text/csv; charset=utf-8", stats_csv(&shared.registry).into_bytes()),
            _ => error_answer(405, "use GET /stats"),
        },
        ["audit", key, kind @ ("record" | "batch" | "stream")] => {
            if request.method != "POST" {
                return error_answer(405, format!("use POST /audit/{key}/{kind}"));
            }
            let Some(entry) = shared.registry.resolve(key) else {
                return error_answer(
                    404,
                    format!("unknown model `{key}` (not a registered name or 16-hex schema fingerprint)"),
                );
            };
            entry.stats.requests.fetch_add(1, Ordering::Relaxed);
            let answer = audit(shared, entry, kind, request);
            if answer.0 != 200 {
                entry.stats.errors.fetch_add(1, Ordering::Relaxed);
            }
            answer
        }
        _ => error_answer(404, format!("no route for `{}`", request.path)),
    }
}

/// The audit endpoints proper: fingerprint assertion, body decode,
/// detection, report rendering.
fn audit(shared: &Shared, entry: &ModelEntry, kind: &str, request: &Request) -> RouteAnswer {
    if let Some(claimed) = request.header("x-schema-fingerprint") {
        let Ok(claimed_fp) = u64::from_str_radix(claimed, 16) else {
            return error_answer(
                400,
                format!("malformed X-Schema-Fingerprint `{claimed}` (expected 16 hex digits)"),
            );
        };
        let found = entry.engine.fingerprint();
        if claimed_fp != found {
            return error_answer(
                409,
                AuditError::SchemaFingerprint { expected: claimed_fp, found },
            );
        }
    }
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return error_answer(400, "request body is not valid UTF-8");
    };
    let engine = &entry.engine;
    let result = match kind {
        "record" => {
            let line = body.trim_end_matches(['\r', '\n']);
            if line.contains('\n') {
                return error_answer(
                    400,
                    "the record endpoint takes exactly one CSV record; POST several to /batch",
                );
            }
            engine.detect_record_csv(line)
        }
        "batch" => {
            // A micro-batch of headerless records: audited as a
            // synthetic CSV whose header is the schema's attribute
            // line, so cell errors report 1-based lines with the
            // implied header as line 1 (first record = line 2).
            let names: Vec<&str> =
                engine.schema().attributes().iter().map(|a| a.name.as_str()).collect();
            let csv = format!("{}\n{}", names.join(","), body);
            engine.detect_csv(csv.as_bytes(), shared.config.chunk_rows)
        }
        // A full CSV stream, header included: lines map 1:1 to the
        // client's own file.
        _ => engine.detect_csv(body.as_bytes(), shared.config.chunk_rows),
    };
    match result {
        Ok(report) => {
            entry.stats.records.fetch_add(report.n_rows() as u64, Ordering::Relaxed);
            entry.stats.violations.fetch_add(report.findings.len() as u64, Ordering::Relaxed);
            let csv = render_report(engine, &report, request.query_flag("corrections"));
            (200, "text/csv; charset=utf-8", csv.into_bytes())
        }
        Err(err) => {
            let status = match err {
                AuditError::SchemaFingerprint { .. } => 409,
                AuditError::Table(_) => 400,
                _ => 500,
            };
            error_answer(status, err)
        }
    }
}

/// The response body: the audit report CSV, or the proposed
/// corrections when `?corrections=1`.
fn render_report(engine: &dq_core::AuditEngine, report: &AuditReport, corrections: bool) -> String {
    if corrections {
        corrections_to_csv(&propose_corrections(report), engine.schema())
    } else {
        report.to_csv(engine.schema())
    }
}

/// The `GET /stats` body: one row per resident model.
fn stats_csv(registry: &ModelRegistry) -> String {
    let mut out = String::from("model,fingerprint,requests,records,violations,errors\n");
    for entry in registry.entries() {
        let (requests, records, violations, errors) = entry.stats.snapshot();
        out.push_str(&format!(
            "{},{},{requests},{records},{violations},{errors}\n",
            entry.name,
            entry.fingerprint_hex(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use dq_core::Auditor;
    use dq_table::{SchemaBuilder, Table, Value};
    use std::io::Write as _;

    fn fixture() -> (ModelRegistry, Table) {
        let schema = SchemaBuilder::new()
            .nominal("brv", ["404", "501"])
            .nominal("gbm", ["901", "911"])
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..400u32 {
            let c = i % 2;
            t.push_row(&[Value::Nominal(c), Value::Nominal(c)]).unwrap();
        }
        t.push_row(&[Value::Nominal(0), Value::Nominal(1)]).unwrap();
        let model = Auditor::default().induce(&t).unwrap();
        let engine = dq_core::AuditEngine::new(model, t.schema().clone());
        let mut registry = ModelRegistry::new();
        registry.insert("calls", engine).unwrap();
        (registry, t)
    }

    fn start(registry: ModelRegistry) -> Server {
        Server::bind("127.0.0.1:0", registry, ServeConfig::default()).unwrap()
    }

    #[test]
    fn health_stats_and_audit_round_trip() {
        let (registry, table) = fixture();
        let server = start(registry);
        let addr = server.addr();

        let health = client::get(addr, "/health").unwrap();
        assert_eq!((health.status, health.body_str()), (200, "ok\n"));

        // Stream the whole table; the response is the in-memory report.
        let mut csv = Vec::new();
        dq_table::write_csv(&table, &mut csv).unwrap();
        let resp = client::post(addr, "/audit/calls/stream", &[], &csv).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_str());
        let expected = server.registry().resolve("calls").unwrap().engine.detect(&table);
        assert_eq!(resp.body_str(), expected.to_csv(table.schema()));

        // One deviant record alone, by name and by fingerprint.
        let record = "501,901";
        for key in ["calls", &server.registry().entries()[0].fingerprint_hex()] {
            let resp = client::post(addr, &format!("/audit/{key}/record"), &[], record.as_bytes())
                .unwrap();
            assert_eq!(resp.status, 200, "{}", resp.body_str());
            assert!(resp.body_str().lines().count() > 1, "deviant record must be flagged");
        }

        let stats = client::get(addr, "/stats").unwrap();
        let line = stats
            .body_str()
            .lines()
            .find(|l| l.starts_with("calls,"))
            .expect("stats row")
            .to_string();
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields[2], "3", "requests: {line}");
        assert_eq!(fields[3], "403", "records: {line}");
        assert_eq!(fields[5], "0", "errors: {line}");

        server.shutdown();
    }

    #[test]
    fn error_statuses_are_typed() {
        let (registry, _) = fixture();
        let fp = registry.entries()[0].fingerprint_hex();
        let server = start(registry);
        let addr = server.addr();

        // Unknown model: 404, immediately.
        let resp = client::post(addr, "/audit/nope/record", &[], b"404,901").unwrap();
        assert_eq!(resp.status, 404);
        assert!(resp.body_str().contains("unknown model `nope`"), "{}", resp.body_str());

        // Fingerprint mismatch: 409 with both fingerprints in the body.
        let resp = client::post(
            addr,
            "/audit/calls/record",
            &[("X-Schema-Fingerprint", "0000000000000000")],
            b"404,901",
        )
        .unwrap();
        assert_eq!(resp.status, 409);
        assert!(resp.body_str().contains("schema fingerprint mismatch"), "{}", resp.body_str());
        assert!(resp.body_str().contains(&fp), "{}", resp.body_str());

        // Matching fingerprint: accepted.
        let resp = client::post(
            addr,
            "/audit/calls/record",
            &[("X-Schema-Fingerprint", fp.as_str())],
            b"404,901",
        )
        .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_str());

        // A bad cell: 400 carrying the table layer's 1-based line.
        let resp =
            client::post(addr, "/audit/calls/stream", &[], b"brv,gbm\n404,901\n404,zap\n").unwrap();
        assert_eq!(resp.status, 400);
        assert!(resp.body_str().contains("line 3"), "{}", resp.body_str());

        // Wrong method: 405.
        let resp = client::get(addr, "/audit/calls/record").unwrap();
        assert_eq!(resp.status, 405);

        // No route: 404.
        let resp = client::get(addr, "/audit/calls/everything").unwrap();
        assert_eq!(resp.status, 404);

        // Errors were counted (the 409 + the 400; the 404s never
        // resolved a model).
        let errors =
            server.registry().resolve("calls").unwrap().stats.errors.load(Ordering::Relaxed);
        assert_eq!(errors, 2);

        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly_and_port_closes() {
        let (registry, _) = fixture();
        let server = start(registry);
        let addr = server.addr();
        assert_eq!(client::get(addr, "/health").unwrap().status, 200);
        server.shutdown();
        // The listener is gone: a fresh connection must fail (or be
        // refused on read).
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(stream) => {
                // Connect can win a race with OS-level backlog teardown;
                // the request must still go unanswered.
                let mut stream = stream;
                let _ = stream.write_all(b"GET /health HTTP/1.1\r\n\r\n");
                let mut buf = Vec::new();
                let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                let n = std::io::Read::read_to_end(&mut stream, &mut buf).unwrap_or(0);
                assert_eq!(n, 0, "no worker should answer after shutdown");
            }
        }
    }
}
