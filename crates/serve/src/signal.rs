//! Graceful-shutdown signals without a signal-handling crate.
//!
//! `dq serve` should treat `SIGTERM` (what `systemd stop`, Kubernetes,
//! and `kill` send) and `SIGINT` (Ctrl-C) as "drain and exit cleanly",
//! not "die mid-audit". The classic std-only way to get a signal out
//! of the narrow async-signal-safe world and into ordinary blocking
//! Rust is the *self-pipe trick*: the handler does nothing but `write`
//! one byte (the signal number) to a pipe — `write` is on POSIX's
//! async-signal-safe list — and a normal thread blocks on `read` from
//! the other end. [`TerminationSignal::wait`] is that read.
//!
//! Everything here is raw libc FFI (`signal`, `pipe`, `read`,
//! `write`), gated to Unix; on other platforms [`install`] reports
//! that signals are unsupported and `dq serve` falls back to its plain
//! blocking join.
//!
//! [`install`]: TerminationSignal::install

use std::sync::atomic::{AtomicBool, AtomicI32};

/// `SIGINT` — interactive interrupt (Ctrl-C).
pub const SIGINT: i32 = 2;
/// `SIGTERM` — polite termination request (`kill`'s default).
pub const SIGTERM: i32 = 15;

/// Human name for a signal number this module installs handlers for.
pub fn signal_name(signum: i32) -> &'static str {
    match signum {
        SIGINT => "SIGINT",
        SIGTERM => "SIGTERM",
        _ => "signal",
    }
}

/// Write end of the self-pipe, published for the handler. `-1` until
/// [`TerminationSignal::install`] runs.
static WRITE_FD: AtomicI32 = AtomicI32::new(-1);
/// One-shot guard: handlers and the pipe are process-global state.
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// A handle on installed `SIGINT`/`SIGTERM` handlers; blocks on
/// [`wait`](TerminationSignal::wait) until one arrives.
#[derive(Debug)]
pub struct TerminationSignal {
    read_fd: i32,
}

#[cfg(unix)]
mod imp {
    use super::{TerminationSignal, INSTALLED, SIGINT, SIGTERM, WRITE_FD};
    use std::sync::atomic::Ordering;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
        fn pipe(fds: *mut i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    /// The handler proper: forward the signal number through the pipe.
    /// `write(2)` is async-signal-safe; nothing else here allocates,
    /// locks, or formats.
    extern "C" fn on_signal(signum: i32) {
        let fd = WRITE_FD.load(Ordering::SeqCst);
        if fd >= 0 {
            let byte = [signum as u8];
            unsafe {
                let _ = write(fd, byte.as_ptr(), 1);
            }
        }
    }

    pub fn install() -> Result<TerminationSignal, String> {
        if INSTALLED.swap(true, Ordering::SeqCst) {
            return Err("termination signal handlers are already installed".to_string());
        }
        let mut fds = [-1i32; 2];
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            INSTALLED.store(false, Ordering::SeqCst);
            return Err(format!("self-pipe creation failed: {}", std::io::Error::last_os_error()));
        }
        WRITE_FD.store(fds[1], Ordering::SeqCst);
        for signum in [SIGINT, SIGTERM] {
            if unsafe { signal(signum, on_signal) } == -1 {
                return Err(format!(
                    "installing the {} handler failed: {}",
                    super::signal_name(signum),
                    std::io::Error::last_os_error()
                ));
            }
        }
        Ok(TerminationSignal { read_fd: fds[0] })
    }

    pub fn wait(handle: &TerminationSignal) -> i32 {
        let mut byte = [0u8; 1];
        loop {
            let n = unsafe { read(handle.read_fd, byte.as_mut_ptr(), 1) };
            if n == 1 {
                return i32::from(byte[0]);
            }
            // 0 would mean the write end closed (it never does) and -1
            // an EINTR from some *other* signal: retry either way — the
            // contract is "block until a termination signal".
        }
    }
}

#[cfg(not(unix))]
mod imp {
    use super::TerminationSignal;

    pub fn install() -> Result<TerminationSignal, String> {
        Err("termination signals are only supported on Unix".to_string())
    }

    pub fn wait(_handle: &TerminationSignal) -> i32 {
        unreachable!("install never succeeds off-Unix")
    }
}

impl TerminationSignal {
    /// Install `SIGINT` + `SIGTERM` handlers backed by a fresh
    /// self-pipe. Process-global and once-only: a second call fails,
    /// as does any platform or OS-level refusal — callers are expected
    /// to degrade to an un-drained exit rather than abort.
    pub fn install() -> Result<TerminationSignal, String> {
        imp::install()
    }

    /// Block the calling thread until a termination signal arrives;
    /// returns its number ([`SIGINT`] or [`SIGTERM`]).
    pub fn wait(&self) -> i32 {
        imp::wait(self)
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    extern "C" {
        fn getpid() -> i32;
        fn kill(pid: i32, signum: i32) -> i32;
    }

    /// One process-wide install budget, so this test owns it: raising a
    /// real SIGTERM and observing `wait` return it exercises the whole
    /// handler → pipe → reader path.
    #[test]
    fn wait_returns_the_raised_signal_and_reinstall_fails() {
        let handle = TerminationSignal::install().expect("first install succeeds");
        assert!(TerminationSignal::install().is_err(), "second install must fail");

        let waiter = std::thread::spawn(move || handle.wait());
        // The handler is installed before `install` returns, so the
        // raise cannot race it.
        unsafe {
            assert_eq!(kill(getpid(), SIGTERM), 0);
        }
        assert_eq!(waiter.join().expect("waiter joins"), SIGTERM);
        assert_eq!(signal_name(SIGTERM), "SIGTERM");
        assert_eq!(signal_name(SIGINT), "SIGINT");
    }
}
