//! Property-based checks of the table substrate: CSV round-trips,
//! discretization invariants and row-surgery accounting.

use dq_table::{
    discretize_equal_frequency, discretize_equal_width, read_csv, write_csv, CsvChunkReader,
    Schema, SchemaBuilder, Table, Value,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A fully random schema + table pair, derived deterministically from a
/// seed (the shim has no dependent generation): 2-6 attributes of
/// random kinds, 0-40 rows of in-domain values, NULLs and — the dirty
/// case — out-of-label nominal codes, pushed leniently the way the
/// polluters write them.
fn random_table(seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_attrs = 2 + (rng.gen::<u64>() % 5) as usize;
    let mut b = SchemaBuilder::new();
    for i in 0..n_attrs {
        b = match rng.gen::<u64>() % 4 {
            0 => b.nominal_sized(&format!("a{i}"), 1 + (rng.gen::<u64>() % 5) as usize),
            1 => b.numeric(&format!("a{i}"), -1e4, 1e4),
            2 => b.integer(&format!("a{i}"), 0.0, 50.0),
            _ => b.date_ymd(&format!("a{i}"), (1995, 1, 1), (2005, 12, 31)),
        };
    }
    let schema = b.build().unwrap();
    let mut t = Table::new(schema.clone());
    let n_rows = (rng.gen::<u64>() % 41) as usize;
    let mut record = Vec::with_capacity(n_attrs);
    for _ in 0..n_rows {
        record.clear();
        for attr in schema.attributes() {
            let roll = rng.gen::<f64>();
            let v = if roll < 0.15 {
                Value::Null
            } else {
                match &attr.ty {
                    dq_table::AttrType::Nominal { labels } => {
                        if roll > 0.9 {
                            // Out-of-label code, as the switcher writes.
                            Value::Nominal(labels.len() as u32 + (rng.gen::<u64>() % 7) as u32)
                        } else {
                            Value::Nominal((rng.gen::<u64>() as usize % labels.len()) as u32)
                        }
                    }
                    dq_table::AttrType::Numeric { min, max, integer: true } => {
                        let span = (*max - *min) as i64;
                        Value::Number(*min + (rng.gen::<u64>() % (span as u64 + 1)) as f64)
                    }
                    dq_table::AttrType::Numeric { min, max, .. } => {
                        // Arbitrary finite doubles round-trip through
                        // the shortest-representation formatting.
                        Value::Number(min + (max - min) * rng.gen::<f64>())
                    }
                    dq_table::AttrType::Date { min, max } => {
                        Value::Date(min + (rng.gen::<u64>() % (*max - *min + 1) as u64) as i64)
                    }
                }
            };
            record.push(v);
        }
        t.push_row_lenient(&record).unwrap();
    }
    t
}

fn schema() -> Arc<Schema> {
    SchemaBuilder::new()
        .nominal("color", ["red", "green", "blue"])
        .numeric("x", -50.0, 50.0)
        .integer("k", 0.0, 20.0)
        .date_ymd("d", (1999, 1, 1), (2001, 12, 31))
        .build()
        .unwrap()
}

fn cell(attr: usize) -> BoxedStrategy<Value> {
    match attr {
        0 => prop_oneof![Just(Value::Null), (0u32..3).prop_map(Value::Nominal)].boxed(),
        1 => prop_oneof![
            Just(Value::Null),
            // Values that survive decimal text round-trips exactly.
            (-5000i64..=5000).prop_map(|m| Value::Number(m as f64 / 100.0)),
        ]
        .boxed(),
        2 => prop_oneof![Just(Value::Null), (0i64..=20).prop_map(|k| Value::Number(k as f64))]
            .boxed(),
        _ => prop_oneof![Just(Value::Null), (10_592i64..11_688).prop_map(Value::Date)].boxed(),
    }
}

fn record() -> impl Strategy<Value = Vec<Value>> {
    (cell(0), cell(1), cell(2), cell(3)).prop_map(|(a, b, c, d)| vec![a, b, c, d])
}

fn table_strategy() -> impl Strategy<Value = Table> {
    proptest::collection::vec(record(), 0..60).prop_map(|rows| {
        let mut t = Table::new(schema());
        for r in rows {
            t.push_row(&r).unwrap();
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// CSV write → read reproduces the table cell-for-cell.
    #[test]
    fn csv_round_trip(t in table_strategy()) {
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv(t.schema().clone(), buf.as_slice()).unwrap();
        prop_assert_eq!(back.n_rows(), t.n_rows());
        for r in 0..t.n_rows() {
            prop_assert_eq!(back.row(r), t.row(r), "row {}", r);
        }
    }

    /// Equal-frequency binning: edges strictly increase, every value
    /// maps into a valid bin, and bin codes are monotone in the value.
    #[test]
    fn equal_frequency_binning_invariants(
        t in table_strategy(),
        n_bins in 2usize..10,
    ) {
        let b = discretize_equal_frequency(&t, 1, n_bins);
        prop_assert_eq!(b.n_bins, b.edges.len() + 1);
        prop_assert!(b.n_bins <= n_bins);
        for w in b.edges.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        let mut prev: Option<(f64, u32)> = None;
        for r in 0..t.n_rows() {
            if let Some(x) = t.get(r, 1).as_numeric() {
                let bin = b.bin_of(x);
                prop_assert!((bin as usize) < b.n_bins);
                if let Some((px, pb)) = prev {
                    if x >= px {
                        prop_assert!(bin >= pb || x == px);
                    }
                }
                if prev.is_none_or(|(px, _)| x > px) {
                    prev = Some((x, bin));
                }
            }
        }
    }

    /// Equal-width binning covers the observed range.
    #[test]
    fn equal_width_binning_covers_range(t in table_strategy(), n_bins in 2usize..10) {
        let b = discretize_equal_width(&t, 1, n_bins);
        for r in 0..t.n_rows() {
            if let Some(x) = t.get(r, 1).as_numeric() {
                prop_assert!((b.bin_of(x) as usize) < b.n_bins);
            }
        }
    }

    /// Duplication and deletion keep row accounting exact.
    #[test]
    fn row_surgery_accounting(t in table_strategy(), ops in proptest::collection::vec(0usize..100, 0..20)) {
        let mut t = t;
        for op in ops {
            if t.is_empty() {
                break;
            }
            let row = op % t.n_rows();
            let before = t.n_rows();
            if op % 2 == 0 {
                let copy = t.duplicate_row(row).unwrap();
                prop_assert_eq!(copy, before);
                prop_assert_eq!(t.row(copy), t.row(row));
                prop_assert_eq!(t.n_rows(), before + 1);
            } else {
                t.delete_row(row).unwrap();
                prop_assert_eq!(t.n_rows(), before - 1);
            }
        }
    }

    /// `select_rows` preserves content, order and multiplicity.
    #[test]
    fn select_rows_is_exact(t in table_strategy(), picks in proptest::collection::vec(0usize..100, 0..30)) {
        prop_assume!(!t.is_empty());
        let keep: Vec<usize> = picks.iter().map(|p| p % t.n_rows()).collect();
        let s = t.select_rows(&keep).unwrap();
        prop_assert_eq!(s.n_rows(), keep.len());
        for (i, &src) in keep.iter().enumerate() {
            prop_assert_eq!(s.row(i), t.row(src));
        }
    }

    /// `Table::chunks(n)` partitions the row range: the concatenated
    /// chunk row-indices equal `0..n_rows` for arbitrary chunk counts —
    /// including `n > n_rows`, `n = 0` and empty tables — and chunk
    /// sizes stay balanced to within one row.
    #[test]
    fn chunks_partition_rows_exactly(t in table_strategy(), n in 0usize..90) {
        let chunks = t.chunks(n);
        let concatenated: Vec<usize> = chunks.iter().flat_map(|c| c.rows()).collect();
        prop_assert_eq!(concatenated, (0..t.n_rows()).collect::<Vec<usize>>());
        if t.is_empty() {
            prop_assert!(chunks.is_empty());
        } else {
            prop_assert_eq!(chunks.len(), n.clamp(1, t.n_rows()));
            let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
            let lo = *sizes.iter().min().unwrap();
            let hi = *sizes.iter().max().unwrap();
            prop_assert!(hi - lo <= 1, "unbalanced chunks: {:?}", sizes);
            prop_assert!(chunks.iter().all(|c| !c.is_empty()));
            // Chunk reads pass through to the underlying table.
            for c in &chunks {
                for r in c.rows() {
                    prop_assert_eq!(c.get(r, 0), t.get(r, 0));
                }
            }
        }
    }

    /// Any workspace-generated table — random schema, NULLs, dirty
    /// out-of-label codes included — round-trips through CSV exactly,
    /// and the chunked reader reassembles the identical table for any
    /// chunk size ≥ 1.
    #[test]
    fn csv_round_trip_any_generated_table(seed in 0u64..u64::MAX, chunk in 1usize..64) {
        let t = random_table(seed);
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv(t.schema().clone(), buf.as_slice()).unwrap();
        prop_assert_eq!(back.n_rows(), t.n_rows());
        for r in 0..t.n_rows() {
            prop_assert_eq!(back.row(r), t.row(r), "row {} differs (seed {})", r, seed);
        }
        // Chunked read ≡ full read, at any batch size.
        let reader = CsvChunkReader::new(t.schema().clone(), buf.as_slice(), chunk).unwrap();
        let mut row = 0usize;
        for batch in reader {
            let batch = batch.unwrap();
            prop_assert!(batch.n_rows() <= chunk);
            for r in 0..batch.n_rows() {
                prop_assert_eq!(batch.row(r), t.row(row), "chunked row {} (seed {})", row, seed);
                row += 1;
            }
        }
        prop_assert_eq!(row, t.n_rows());
    }

    /// Pushed records validate; domain violations only report non-NULL
    /// out-of-domain cells.
    #[test]
    fn domain_violation_reporting(t in table_strategy()) {
        // The generated cells are all in-domain.
        prop_assert!(t.domain_violations().is_empty());
        let mut t = t;
        if t.n_rows() > 0 {
            t.set(0, 1, Value::Number(1e9)).unwrap();
            let v = t.domain_violations();
            prop_assert!(v.contains(&(0, 1)));
        }
    }
}
