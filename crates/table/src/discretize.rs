//! Discretization of ordered (numeric/date) columns into nominal bins.
//!
//! The auditing tool of the paper handles numeric *class* attributes by
//! discretizing them "into equal frequency bins before the induction
//! process" (sec. 5). [`discretize_equal_frequency`] implements exactly
//! that; [`discretize_equal_width`] is provided as the obvious
//! alternative for ablation experiments.

use crate::column::Column;
use crate::table::Table;
use crate::AttrIdx;

/// A fitted binning of an ordered column: `edges[i]` is the inclusive
/// upper edge of bin `i`; the last bin is unbounded above. A value `x`
/// falls into the first bin whose edge is `>= x`.
#[derive(Debug, Clone, PartialEq)]
pub struct Binning {
    /// Inclusive upper edges of all bins except the last.
    pub edges: Vec<f64>,
    /// Total number of bins (`edges.len() + 1`).
    pub n_bins: usize,
}

impl Binning {
    /// Bin index of a value.
    #[inline]
    pub fn bin_of(&self, x: f64) -> u32 {
        // Bins are few (typically < 32); a linear scan beats binary
        // search at these sizes and is branch-predictable.
        for (i, e) in self.edges.iter().enumerate() {
            if x <= *e {
                return i as u32;
            }
        }
        self.edges.len() as u32
    }

    /// Human-readable label of a bin, for findings and reports.
    pub fn label_of(&self, bin: u32) -> String {
        let bin = bin as usize;
        match (bin, self.edges.len()) {
            (0, 0) => "(-inf, +inf)".to_string(),
            (0, _) => format!("(-inf, {}]", self.edges[0]),
            (b, n) if b >= n => format!("({}, +inf)", self.edges[n - 1]),
            (b, _) => format!("({}, {}]", self.edges[b - 1], self.edges[b]),
        }
    }

    /// A representative value for a bin — used when a proposed
    /// correction must be materialized as a concrete numeric value. The
    /// midpoint of interior bins; the edge itself for the unbounded
    /// outer bins.
    pub fn representative(&self, bin: u32) -> f64 {
        let bin = bin as usize;
        if self.edges.is_empty() {
            return 0.0;
        }
        if bin == 0 {
            self.edges[0]
        } else if bin >= self.edges.len() {
            self.edges[self.edges.len() - 1]
        } else {
            (self.edges[bin - 1] + self.edges[bin]) / 2.0
        }
    }
}

/// Fit an equal-frequency binning on the non-NULL values of column
/// `col` and return it. At most `n_bins` bins are produced; duplicate
/// candidate edges are merged, so heavily tied columns yield fewer
/// bins. NULLs are ignored (they stay NULL after mapping).
pub fn discretize_equal_frequency(table: &Table, col: AttrIdx, n_bins: usize) -> Binning {
    let mut values = ordered_values(table.column(col));
    values.sort_by(|a, b| a.partial_cmp(b).expect("non-finite value in ordered column"));
    if values.is_empty() || n_bins <= 1 {
        return Binning { edges: Vec::new(), n_bins: 1 };
    }
    let n = values.len();
    let mut edges = Vec::with_capacity(n_bins - 1);
    for k in 1..n_bins {
        let idx = (k * n) / n_bins;
        if idx == 0 || idx >= n {
            continue;
        }
        let edge = values[idx - 1];
        // Only cut between distinct values, otherwise the bin would be
        // empty or the same value would straddle two bins.
        if values[idx] > edge && edges.last().is_none_or(|&e| edge > e) {
            edges.push(edge);
        }
    }
    let n_bins = edges.len() + 1;
    Binning { edges, n_bins }
}

/// Fit an equal-width binning over the observed min/max of column `col`.
pub fn discretize_equal_width(table: &Table, col: AttrIdx, n_bins: usize) -> Binning {
    let values = ordered_values(table.column(col));
    if values.is_empty() || n_bins <= 1 {
        return Binning { edges: Vec::new(), n_bins: 1 };
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in &values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo >= hi {
        return Binning { edges: Vec::new(), n_bins: 1 };
    }
    let width = (hi - lo) / n_bins as f64;
    let edges: Vec<f64> = (1..n_bins).map(|k| lo + width * k as f64).collect();
    let n_bins = edges.len() + 1;
    Binning { edges, n_bins }
}

fn ordered_values(column: &Column) -> Vec<f64> {
    match column {
        Column::Number(v) => v.iter().flatten().copied().collect(),
        Column::Date(v) => v.iter().flatten().map(|&d| d as f64).collect(),
        Column::Nominal(_) => {
            panic!("discretization applies to numeric/date columns only")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;
    use crate::value::Value;

    fn numeric_table(values: &[Option<f64>]) -> Table {
        let schema = SchemaBuilder::new().numeric("x", -1e9, 1e9).build().unwrap();
        let mut t = Table::new(schema);
        for v in values {
            t.push_row(&[v.map_or(Value::Null, Value::Number)]).unwrap();
        }
        t
    }

    #[test]
    fn equal_frequency_splits_evenly() {
        let t = numeric_table(&(1..=12).map(|i| Some(i as f64)).collect::<Vec<_>>());
        let b = discretize_equal_frequency(&t, 0, 3);
        assert_eq!(b.n_bins, 3);
        assert_eq!(b.edges, vec![4.0, 8.0]);
        assert_eq!(b.bin_of(1.0), 0);
        assert_eq!(b.bin_of(4.0), 0);
        assert_eq!(b.bin_of(4.5), 1);
        assert_eq!(b.bin_of(8.1), 2);
        assert_eq!(b.bin_of(1e6), 2);
    }

    #[test]
    fn equal_frequency_merges_ties() {
        // Nine copies of one value + three others: cannot produce four
        // non-degenerate bins.
        let mut vals = vec![Some(5.0); 9];
        vals.extend([Some(1.0), Some(2.0), Some(9.0)]);
        let t = numeric_table(&vals);
        let b = discretize_equal_frequency(&t, 0, 4);
        assert!(b.n_bins <= 4);
        for w in b.edges.windows(2) {
            assert!(w[0] < w[1], "edges must be strictly increasing");
        }
    }

    #[test]
    fn equal_frequency_ignores_nulls_and_handles_empty() {
        let t = numeric_table(&[None, None]);
        let b = discretize_equal_frequency(&t, 0, 4);
        assert_eq!(b.n_bins, 1);
        assert_eq!(b.bin_of(123.0), 0);
    }

    #[test]
    fn equal_width_covers_range() {
        let t = numeric_table(&[Some(0.0), Some(10.0)]);
        let b = discretize_equal_width(&t, 0, 5);
        assert_eq!(b.edges, vec![2.0, 4.0, 6.0, 8.0]);
        assert_eq!(b.bin_of(0.0), 0);
        assert_eq!(b.bin_of(9.9), 4);
    }

    #[test]
    fn equal_width_degenerate_range() {
        let t = numeric_table(&[Some(3.0), Some(3.0)]);
        let b = discretize_equal_width(&t, 0, 5);
        assert_eq!(b.n_bins, 1);
    }

    #[test]
    fn labels_and_representatives() {
        let b = Binning { edges: vec![2.0, 4.0], n_bins: 3 };
        assert_eq!(b.label_of(0), "(-inf, 2]");
        assert_eq!(b.label_of(1), "(2, 4]");
        assert_eq!(b.label_of(2), "(4, +inf)");
        assert_eq!(b.representative(1), 3.0);
        assert_eq!(b.representative(0), 2.0);
        assert_eq!(b.representative(2), 4.0);
    }

    #[test]
    fn date_columns_discretize_via_day_numbers() {
        let schema =
            SchemaBuilder::new().date_ymd("d", (2000, 1, 1), (2010, 1, 1)).build().unwrap();
        let mut t = Table::new(schema);
        for d in [0i64, 100, 200, 300].iter() {
            t.push_row(&[Value::Date(crate::date::days_from_civil(2001, 1, 1) + d)]).unwrap();
        }
        let b = discretize_equal_frequency(&t, 0, 2);
        assert_eq!(b.n_bins, 2);
    }

    #[test]
    #[should_panic(expected = "numeric/date columns only")]
    fn nominal_columns_are_rejected() {
        let schema = SchemaBuilder::new().nominal("c", ["a"]).build().unwrap();
        let t = Table::new(schema);
        discretize_equal_frequency(&t, 0, 2);
    }
}
