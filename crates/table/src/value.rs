//! Cell values with explicit NULL.

use std::cmp::Ordering;
use std::fmt;

/// A single cell value.
///
/// Nominal values are stored as codes into the attribute's label list —
/// the schema owns the labels, the table only stores `u32` codes. Dates
/// are stored as day numbers (days since 1970-01-01, may be negative);
/// see [`crate::date`] for conversions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Missing value (SQL NULL).
    Null,
    /// A nominal value, as a code into the attribute's label list.
    Nominal(u32),
    /// A numeric value.
    Number(f64),
    /// A date, as a day number relative to 1970-01-01.
    Date(i64),
}

impl Value {
    /// `true` iff the value is [`Value::Null`].
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The nominal code, if this is a nominal value.
    #[inline]
    pub fn as_nominal(&self) -> Option<u32> {
        match self {
            Value::Nominal(c) => Some(*c),
            _ => None,
        }
    }

    /// The numeric payload, widening dates to their day number, if this
    /// is a number or a date.
    ///
    /// Dates take part in numeric comparisons (`N < n` atoms, limiter
    /// pollution, equal-frequency binning) through this widening, exactly
    /// like the paper treats date attributes as orderable.
    #[inline]
    pub fn as_numeric(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            Value::Date(d) => Some(*d as f64),
            _ => None,
        }
    }

    /// SQL-style three-valued equality: `None` when either side is NULL.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(match (self, other) {
            (Value::Nominal(a), Value::Nominal(b)) => a == b,
            (a, b) => match (a.as_numeric(), b.as_numeric()) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
        })
    }

    /// SQL-style three-valued ordering: `None` when either side is NULL
    /// or the values are not mutually orderable (e.g. nominal vs number).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        match (self, other) {
            (Value::Nominal(a), Value::Nominal(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_numeric()?, b.as_numeric()?);
                x.partial_cmp(&y)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Nominal(c) => write!(f, "#{c}"),
            Value::Number(x) => write!(f, "{x}"),
            Value::Date(d) => {
                let (y, m, day) = crate::date::civil_from_days(*d);
                write!(f, "{y:04}-{m:02}-{day:02}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_detection() {
        assert!(Value::Null.is_null());
        assert!(!Value::Nominal(0).is_null());
        assert!(!Value::Number(0.0).is_null());
        assert!(!Value::Date(0).is_null());
    }

    #[test]
    fn numeric_widening_includes_dates() {
        assert_eq!(Value::Number(2.5).as_numeric(), Some(2.5));
        assert_eq!(Value::Date(10).as_numeric(), Some(10.0));
        assert_eq!(Value::Nominal(1).as_numeric(), None);
        assert_eq!(Value::Null.as_numeric(), None);
    }

    #[test]
    fn sql_eq_is_three_valued() {
        assert_eq!(Value::Null.sql_eq(&Value::Number(1.0)), None);
        assert_eq!(Value::Number(1.0).sql_eq(&Value::Null), None);
        assert_eq!(Value::Number(1.0).sql_eq(&Value::Number(1.0)), Some(true));
        assert_eq!(Value::Nominal(3).sql_eq(&Value::Nominal(4)), Some(false));
    }

    #[test]
    fn sql_cmp_orders_dates_and_numbers_together() {
        assert_eq!(Value::Date(5).sql_cmp(&Value::Number(6.0)), Some(Ordering::Less));
        assert_eq!(Value::Number(6.0).sql_cmp(&Value::Date(5)), Some(Ordering::Greater));
        assert_eq!(Value::Null.sql_cmp(&Value::Number(0.0)), None);
        // Nominal values only order against other nominal values.
        assert_eq!(Value::Nominal(1).sql_cmp(&Value::Number(0.0)), None);
        assert_eq!(Value::Nominal(1).sql_cmp(&Value::Nominal(2)), Some(Ordering::Less));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Nominal(7).to_string(), "#7");
        assert_eq!(Value::Number(1.5).to_string(), "1.5");
        assert_eq!(Value::Date(0).to_string(), "1970-01-01");
    }
}
