//! Error type shared by all fallible table operations.

use std::fmt;

/// Errors raised by schema construction and table manipulation.
#[derive(Debug, Clone, PartialEq)]
pub enum TableError {
    /// An attribute name was declared twice in one schema.
    DuplicateAttribute(String),
    /// A nominal attribute was declared with an empty label set.
    EmptyDomain(String),
    /// A numeric/date attribute was declared with `min > max` or a
    /// non-finite bound.
    InvalidRange(String),
    /// An attribute name or index was not found in the schema.
    UnknownAttribute(String),
    /// A value's kind does not match the attribute's declared type.
    TypeMismatch {
        /// Attribute the value was destined for.
        attribute: String,
        /// Human description of the offending value.
        value: String,
    },
    /// A nominal code is outside the attribute's label list.
    CodeOutOfRange {
        /// Attribute the code was destined for.
        attribute: String,
        /// The offending code.
        code: u32,
        /// Number of labels in the attribute's domain.
        domain_size: usize,
    },
    /// A row index was past the end of the table.
    RowOutOfRange(usize),
    /// A record had the wrong number of fields for the schema.
    ArityMismatch {
        /// Fields expected (schema width).
        expected: usize,
        /// Fields provided.
        got: usize,
    },
    /// Two tables (or a table and a schema) that must agree did not.
    SchemaMismatch,
    /// Two tables whose canonical schema fingerprints disagree were
    /// merged (see [`crate::Table::append_rows`]): per-index column
    /// kinds may coincide, so this is the check that catches permuted
    /// attributes before they silently scramble column meanings.
    SchemaFingerprint {
        /// Fingerprint of the receiving table's schema.
        expected: u64,
        /// Fingerprint of the offered table's schema.
        got: u64,
    },
    /// A malformed CSV line or cell.
    Csv(String),
    /// A malformed CSV cell, located by 1-based line number (counting
    /// the header as line 1) and column name — so a user can find the
    /// bad cell in a million-row file.
    CsvCell {
        /// 1-based physical line number in the CSV stream.
        line: usize,
        /// Name of the schema column the cell belongs to.
        column: String,
        /// What was wrong with the cell.
        message: String,
    },
    /// A quarantining CSV reader absorbed more malformed rows than its
    /// error budget allows (see `CsvChunkReader::with_quarantine`).
    QuarantineBudget {
        /// Maximum malformed rows the reader was allowed to absorb.
        max_bad_rows: usize,
        /// 1-based physical line of the row that overflowed the budget.
        line: usize,
    },
    /// A malformed line in a schema text file (see `schema_io`).
    SchemaText(String),
    /// An underlying I/O failure (message only, to keep the error `Clone`).
    Io(String),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::DuplicateAttribute(name) => {
                write!(f, "duplicate attribute name `{name}`")
            }
            TableError::EmptyDomain(name) => {
                write!(f, "nominal attribute `{name}` has an empty domain")
            }
            TableError::InvalidRange(name) => {
                write!(f, "attribute `{name}` has an invalid (empty or non-finite) range")
            }
            TableError::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            TableError::TypeMismatch { attribute, value } => {
                write!(f, "value {value} does not match the type of attribute `{attribute}`")
            }
            TableError::CodeOutOfRange { attribute, code, domain_size } => write!(
                f,
                "nominal code {code} out of range for attribute `{attribute}` (domain size {domain_size})"
            ),
            TableError::RowOutOfRange(row) => write!(f, "row index {row} out of range"),
            TableError::ArityMismatch { expected, got } => {
                write!(f, "record has {got} fields, schema has {expected}")
            }
            TableError::SchemaMismatch => write!(f, "schemas do not match"),
            TableError::SchemaFingerprint { expected, got } => write!(
                f,
                "schema fingerprint mismatch: table has {expected:016x}, batch has {got:016x}"
            ),
            TableError::Csv(msg) => write!(f, "csv error: {msg}"),
            TableError::CsvCell { line, column, message } => {
                write!(f, "csv error: line {line}, column `{column}`: {message}")
            }
            TableError::QuarantineBudget { max_bad_rows, line } => write!(
                f,
                "quarantine budget exceeded: more than {max_bad_rows} malformed rows \
                 (line {line} overflowed)"
            ),
            TableError::SchemaText(msg) => write!(f, "schema text error: {msg}"),
            TableError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for TableError {}

impl From<std::io::Error> for TableError {
    fn from(e: std::io::Error) -> Self {
        TableError::Io(e.to_string())
    }
}
