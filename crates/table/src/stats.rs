//! Per-column summaries — the "domain analysis" helpers a quality
//! engineer runs before configuring the test data generator.

use crate::column::Column;
use crate::table::Table;
use crate::AttrIdx;
use std::collections::HashMap;

/// Descriptive summary of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSummary {
    /// Attribute name.
    pub name: String,
    /// Total cells.
    pub n: usize,
    /// NULL cells.
    pub nulls: usize,
    /// Distinct non-NULL values.
    pub distinct: usize,
    /// Minimum (numeric/date columns, widened to f64).
    pub min: Option<f64>,
    /// Maximum (numeric/date columns, widened to f64).
    pub max: Option<f64>,
    /// Mean (numeric/date columns).
    pub mean: Option<f64>,
    /// Most frequent non-NULL nominal code and its count.
    pub mode: Option<(u32, usize)>,
}

impl ColumnSummary {
    /// NULL ratio in `[0, 1]`; 0 for empty columns.
    pub fn null_ratio(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.nulls as f64 / self.n as f64
        }
    }
}

/// Summarize column `col` of `table`.
pub fn summarize(table: &Table, col: AttrIdx) -> ColumnSummary {
    let name = table.schema().attr(col).name.clone();
    let column = table.column(col);
    let n = column.len();
    let nulls = column.null_count();
    match column {
        Column::Nominal(v) => {
            let mut counts: HashMap<u32, usize> = HashMap::new();
            for c in v.iter().flatten() {
                *counts.entry(*c).or_insert(0) += 1;
            }
            let mode = counts.iter().max_by_key(|(_, &n)| n).map(|(&c, &n)| (c, n));
            ColumnSummary {
                name,
                n,
                nulls,
                distinct: counts.len(),
                min: None,
                max: None,
                mean: None,
                mode,
            }
        }
        Column::Number(_) | Column::Date(_) => {
            let values: Vec<f64> = match column {
                Column::Number(v) => v.iter().flatten().copied().collect(),
                Column::Date(v) => v.iter().flatten().map(|&d| d as f64).collect(),
                Column::Nominal(_) => unreachable!(),
            };
            let mut distinct_sorted = values.clone();
            distinct_sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite value"));
            distinct_sorted.dedup();
            let (min, max, mean) = if values.is_empty() {
                (None, None, None)
            } else {
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                let mut sum = 0.0;
                for &x in &values {
                    lo = lo.min(x);
                    hi = hi.max(x);
                    sum += x;
                }
                (Some(lo), Some(hi), Some(sum / values.len() as f64))
            };
            ColumnSummary {
                name,
                n,
                nulls,
                distinct: distinct_sorted.len(),
                min,
                max,
                mean,
                mode: None,
            }
        }
    }
}

/// Summarize every column of `table`.
pub fn summarize_all(table: &Table) -> Vec<ColumnSummary> {
    (0..table.n_cols()).map(|c| summarize(table, c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;
    use crate::value::Value;

    #[test]
    fn summarizes_nominal_and_numeric() {
        let schema = SchemaBuilder::new()
            .nominal("c", ["a", "b", "z"])
            .numeric("x", -100.0, 100.0)
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        t.push_row(&[Value::Nominal(0), Value::Number(1.0)]).unwrap();
        t.push_row(&[Value::Nominal(0), Value::Number(3.0)]).unwrap();
        t.push_row(&[Value::Nominal(1), Value::Null]).unwrap();
        t.push_row(&[Value::Null, Value::Number(3.0)]).unwrap();

        let s = summarize(&t, 0);
        assert_eq!(s.n, 4);
        assert_eq!(s.nulls, 1);
        assert_eq!(s.distinct, 2);
        assert_eq!(s.mode, Some((0, 2)));
        assert_eq!(s.null_ratio(), 0.25);

        let s = summarize(&t, 1);
        assert_eq!(s.distinct, 2);
        assert_eq!(s.min, Some(1.0));
        assert_eq!(s.max, Some(3.0));
        assert!((s.mean.unwrap() - 7.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.mode, None);
    }

    #[test]
    fn empty_table_summaries() {
        let schema = SchemaBuilder::new().numeric("x", 0.0, 1.0).build().unwrap();
        let t = Table::new(schema);
        let s = summarize(&t, 0);
        assert_eq!(s.n, 0);
        assert_eq!(s.min, None);
        assert_eq!(s.null_ratio(), 0.0);
        assert_eq!(summarize_all(&t).len(), 1);
    }
}
