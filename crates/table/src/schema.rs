//! Schemas: attribute declarations with explicit domains.
//!
//! The test data generator of the paper starts from "a schema for the
//! target relation with domain ranges for each attribute" (sec. 4.1).
//! Domains are first-class here: nominal attributes carry their full
//! label list, numeric and date attributes carry closed ranges. The
//! satisfiability test of `dq-logic` and the samplers of `dq-tdg` both
//! work directly on these domain declarations.

use crate::error::TableError;
use crate::value::Value;
use crate::AttrIdx;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// The declared type (and domain) of an attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrType {
    /// Finite, ordered label set; values are stored as codes (indices)
    /// into this list.
    Nominal {
        /// The domain labels, in code order.
        labels: Vec<String>,
    },
    /// Bounded numeric range `[min, max]`.
    Numeric {
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
        /// If `true`, the domain is the integers within `[min, max]`.
        integer: bool,
    },
    /// Bounded date range `[min, max]` in day numbers
    /// (see [`crate::date`]).
    Date {
        /// Inclusive lower bound (day number).
        min: i64,
        /// Inclusive upper bound (day number).
        max: i64,
    },
}

impl AttrType {
    /// `true` for numeric and date attributes — the attribute kinds that
    /// take part in ordering atoms (`N < n`, `N > M`, …) of the TDG
    /// logic and in the limiter polluter.
    pub fn is_ordered(&self) -> bool {
        !matches!(self, AttrType::Nominal { .. })
    }

    /// Number of distinct values in the domain, if finite and cheaply
    /// countable (nominal: label count; integer numeric and date: range
    /// width; real numeric: `None`).
    pub fn domain_size(&self) -> Option<u64> {
        match self {
            AttrType::Nominal { labels } => Some(labels.len() as u64),
            AttrType::Numeric { min, max, integer: true } => {
                let lo = min.ceil() as i64;
                let hi = max.floor() as i64;
                Some((hi - lo + 1).max(0) as u64)
            }
            AttrType::Numeric { .. } => None,
            AttrType::Date { min, max } => Some((max - min + 1).max(0) as u64),
        }
    }

    /// Check that a (non-NULL) value is of the matching kind and inside
    /// the declared domain.
    pub fn contains(&self, v: &Value) -> bool {
        match (self, v) {
            (AttrType::Nominal { labels }, Value::Nominal(c)) => (*c as usize) < labels.len(),
            (AttrType::Numeric { min, max, integer }, Value::Number(x)) => {
                x.is_finite() && *x >= *min && *x <= *max && (!*integer || x.fract() == 0.0)
            }
            (AttrType::Date { min, max }, Value::Date(d)) => d >= min && d <= max,
            _ => false,
        }
    }

    /// Check only that the value's *kind* matches (NULL always matches).
    pub fn kind_matches(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (AttrType::Nominal { .. }, Value::Nominal(_))
                | (AttrType::Numeric { .. }, Value::Number(_))
                | (AttrType::Date { .. }, Value::Date(_))
        )
    }
}

/// A named, typed attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    /// Attribute name; unique within a schema.
    pub name: String,
    /// Declared type and domain.
    pub ty: AttrType,
}

impl Attribute {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: AttrType) -> Self {
        Attribute { name: name.into(), ty }
    }

    /// The label of a nominal code under this attribute, if any.
    pub fn label(&self, code: u32) -> Option<&str> {
        match &self.ty {
            AttrType::Nominal { labels } => labels.get(code as usize).map(String::as_str),
            _ => None,
        }
    }

    /// The code of a nominal label under this attribute, if any.
    pub fn code(&self, label: &str) -> Option<u32> {
        match &self.ty {
            AttrType::Nominal { labels } => {
                labels.iter().position(|l| l == label).map(|i| i as u32)
            }
            _ => None,
        }
    }
}

/// A relation schema: an ordered list of uniquely named attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    attributes: Vec<Attribute>,
    by_name: HashMap<String, AttrIdx>,
}

impl Schema {
    /// Build a schema, validating name uniqueness and domain sanity.
    pub fn new(attributes: Vec<Attribute>) -> Result<Self, TableError> {
        let mut by_name = HashMap::with_capacity(attributes.len());
        for (i, a) in attributes.iter().enumerate() {
            if by_name.insert(a.name.clone(), i).is_some() {
                return Err(TableError::DuplicateAttribute(a.name.clone()));
            }
            match &a.ty {
                AttrType::Nominal { labels } => {
                    if labels.is_empty() {
                        return Err(TableError::EmptyDomain(a.name.clone()));
                    }
                }
                AttrType::Numeric { min, max, .. } => {
                    if !min.is_finite() || !max.is_finite() || min > max {
                        return Err(TableError::InvalidRange(a.name.clone()));
                    }
                }
                AttrType::Date { min, max } => {
                    if min > max {
                        return Err(TableError::InvalidRange(a.name.clone()));
                    }
                }
            }
        }
        Ok(Schema { attributes, by_name })
    }

    /// Build and wrap in an [`Arc`], the form tables store.
    pub fn shared(attributes: Vec<Attribute>) -> Result<Arc<Self>, TableError> {
        Self::new(attributes).map(Arc::new)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// `true` if the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// The attribute at `idx`; panics if out of range.
    pub fn attr(&self, idx: AttrIdx) -> &Attribute {
        &self.attributes[idx]
    }

    /// All attributes in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Look an attribute up by name.
    pub fn index_of(&self, name: &str) -> Option<AttrIdx> {
        self.by_name.get(name).copied()
    }

    /// Like [`Schema::index_of`] but returns a [`TableError`].
    pub fn require(&self, name: &str) -> Result<AttrIdx, TableError> {
        self.index_of(name).ok_or_else(|| TableError::UnknownAttribute(name.to_string()))
    }

    /// The schema's 64-bit content fingerprint (FNV-1a over the
    /// canonical text rendering of `crate::schema_io`). Persisted
    /// artifacts — saved structure models in particular — embed it so
    /// they can refuse to operate on the wrong relation.
    pub fn fingerprint(&self) -> u64 {
        crate::schema_io::fingerprint(self)
    }

    /// Render a value under the attribute at `idx` using domain labels
    /// (nominal codes become their labels).
    pub fn display_value(&self, idx: AttrIdx, v: &Value) -> String {
        match (v, &self.attributes[idx].ty) {
            (Value::Nominal(c), AttrType::Nominal { labels }) => {
                labels.get(*c as usize).cloned().unwrap_or_else(|| format!("#{c}?"))
            }
            _ => v.to_string(),
        }
    }

    /// Validate a full record against the schema: arity, kinds, nominal
    /// code ranges. Domain *range* membership is not enforced here —
    /// polluted tables intentionally hold out-of-domain values.
    pub fn validate_record(&self, record: &[Value]) -> Result<(), TableError> {
        if record.len() != self.len() {
            return Err(TableError::ArityMismatch { expected: self.len(), got: record.len() });
        }
        for (i, v) in record.iter().enumerate() {
            let a = &self.attributes[i];
            if !a.ty.kind_matches(v) {
                return Err(TableError::TypeMismatch {
                    attribute: a.name.clone(),
                    value: v.to_string(),
                });
            }
            if let (Value::Nominal(c), AttrType::Nominal { labels }) = (v, &a.ty) {
                if *c as usize >= labels.len() {
                    return Err(TableError::CodeOutOfRange {
                        attribute: a.name.clone(),
                        code: *c,
                        domain_size: labels.len(),
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            match &a.ty {
                AttrType::Nominal { labels } => {
                    write!(f, "{}: nominal({} labels)", a.name, labels.len())?
                }
                AttrType::Numeric { min, max, integer } => write!(
                    f,
                    "{}: {}[{}, {}]",
                    a.name,
                    if *integer { "integer" } else { "numeric" },
                    min,
                    max
                )?,
                AttrType::Date { min, max } => {
                    write!(f, "{}: date[{}, {}]", a.name, Value::Date(*min), Value::Date(*max))?
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nominal(name: &str, labels: &[&str]) -> Attribute {
        Attribute::new(
            name,
            AttrType::Nominal { labels: labels.iter().map(|s| s.to_string()).collect() },
        )
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = Schema::new(vec![nominal("a", &["x"]), nominal("a", &["y"])]).unwrap_err();
        assert_eq!(err, TableError::DuplicateAttribute("a".into()));
    }

    #[test]
    fn rejects_empty_nominal_domain() {
        let err = Schema::new(vec![nominal("a", &[])]).unwrap_err();
        assert_eq!(err, TableError::EmptyDomain("a".into()));
    }

    #[test]
    fn rejects_inverted_numeric_range() {
        let err = Schema::new(vec![Attribute::new(
            "n",
            AttrType::Numeric { min: 5.0, max: 1.0, integer: false },
        )])
        .unwrap_err();
        assert_eq!(err, TableError::InvalidRange("n".into()));
    }

    #[test]
    fn name_lookup() {
        let s = Schema::new(vec![nominal("a", &["x"]), nominal("b", &["y"])]).unwrap();
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("c"), None);
        assert!(s.require("c").is_err());
    }

    #[test]
    fn domain_membership() {
        let num = AttrType::Numeric { min: 0.0, max: 10.0, integer: true };
        assert!(num.contains(&Value::Number(3.0)));
        assert!(!num.contains(&Value::Number(3.5))); // not integral
        assert!(!num.contains(&Value::Number(11.0))); // out of range
        assert!(!num.contains(&Value::Null)); // NULL is not *in* a domain
        let date = AttrType::Date { min: 0, max: 100 };
        assert!(date.contains(&Value::Date(50)));
        assert!(!date.contains(&Value::Date(101)));
    }

    #[test]
    fn domain_sizes() {
        assert_eq!(AttrType::Numeric { min: 1.0, max: 5.0, integer: true }.domain_size(), Some(5));
        assert_eq!(AttrType::Numeric { min: 1.0, max: 5.0, integer: false }.domain_size(), None);
        assert_eq!(AttrType::Date { min: 10, max: 12 }.domain_size(), Some(3));
    }

    #[test]
    fn record_validation() {
        let s = Schema::new(vec![
            nominal("a", &["x", "y"]),
            Attribute::new("n", AttrType::Numeric { min: 0.0, max: 1.0, integer: false }),
        ])
        .unwrap();
        assert!(s.validate_record(&[Value::Nominal(1), Value::Number(0.5)]).is_ok());
        assert!(s.validate_record(&[Value::Null, Value::Null]).is_ok());
        assert!(matches!(
            s.validate_record(&[Value::Nominal(2), Value::Null]),
            Err(TableError::CodeOutOfRange { .. })
        ));
        assert!(matches!(
            s.validate_record(&[Value::Number(0.0), Value::Null]),
            Err(TableError::TypeMismatch { .. })
        ));
        assert!(matches!(s.validate_record(&[Value::Null]), Err(TableError::ArityMismatch { .. })));
    }

    #[test]
    fn label_code_round_trip() {
        let a = nominal("a", &["red", "green", "blue"]);
        assert_eq!(a.code("green"), Some(1));
        assert_eq!(a.label(1), Some("green"));
        assert_eq!(a.code("mauve"), None);
        assert_eq!(a.label(9), None);
    }
}
