//! A versioned text format for [`Schema`]s, and the schema fingerprint.
//!
//! Persisted artifacts (CSV datasets on disk, saved structure models)
//! are only meaningful relative to a schema, so the schema itself must
//! be a first-class file: `dq generate` writes one next to its CSVs,
//! `dq induce`/`dq detect` read it back, and saved structure models
//! embed its **fingerprint** so a model can never silently audit the
//! wrong relation.
//!
//! The format is line-oriented and human-diffable:
//!
//! ```text
//! dq-schema v1
//! color: nominal(red|green|blue)
//! size: numeric [0, 100]
//! k: integer [0, 20]
//! built: date [2000-01-01, 2010-01-01]
//! ```
//!
//! Blank lines and `#` comments are ignored when reading. Numeric
//! bounds round-trip exactly (Rust's shortest-representation float
//! formatting); dates are ISO days. Names must not contain `:` or
//! newlines, labels must not contain `|`, `,` or newlines — the same
//! no-quoting stance as the CSV module.
//!
//! [`fingerprint`] is the FNV-1a 64-bit hash of the canonical rendered
//! text, so two schemas agree on their fingerprint iff they render
//! identically (same names, same order, same domains).

use crate::builder::SchemaBuilder;
use crate::date::parse_iso;
use crate::error::TableError;
use crate::schema::{AttrType, Schema};
use crate::value::Value;
use std::io::{BufRead, Write};
use std::sync::Arc;

/// The version line every schema file starts with.
const HEADER: &str = "dq-schema v1";

/// Render `schema` in the canonical v1 text format.
pub fn render_schema(schema: &Schema) -> Result<String, TableError> {
    let mut out = String::from(HEADER);
    out.push('\n');
    for attr in schema.attributes() {
        if attr.name.contains(':') || attr.name.contains('\n') {
            return Err(TableError::SchemaText(format!(
                "attribute name `{}` contains `:` or a newline and cannot be serialized",
                attr.name
            )));
        }
        out.push_str(&attr.name);
        out.push_str(": ");
        match &attr.ty {
            AttrType::Nominal { labels } => {
                for l in labels {
                    if l.is_empty() || l.contains('|') || l.contains(',') || l.contains('\n') {
                        return Err(TableError::SchemaText(format!(
                            "label `{l}` of `{}` is empty or contains `|`, `,` or a newline",
                            attr.name
                        )));
                    }
                    if l.starts_with('#') {
                        return Err(TableError::SchemaText(format!(
                            "label `{l}` of `{}` starts with `#`, which is reserved for the \
                             CSV out-of-label escape",
                            attr.name
                        )));
                    }
                }
                out.push_str(&format!("nominal({})", labels.join("|")));
            }
            AttrType::Numeric { min, max, integer } => {
                let kind = if *integer { "integer" } else { "numeric" };
                out.push_str(&format!("{kind} [{min}, {max}]"));
            }
            AttrType::Date { min, max } => {
                out.push_str(&format!("date [{}, {}]", Value::Date(*min), Value::Date(*max)));
            }
        }
        out.push('\n');
    }
    Ok(out)
}

/// Write `schema` in the canonical v1 text format.
pub fn write_schema<W: Write>(schema: &Schema, mut out: W) -> Result<(), TableError> {
    out.write_all(render_schema(schema)?.as_bytes())?;
    Ok(())
}

/// Read a schema from its v1 text form.
pub fn read_schema<R: BufRead>(input: R) -> Result<Arc<Schema>, TableError> {
    let mut lines = input.lines();
    let first = lines
        .next()
        .transpose()?
        .ok_or_else(|| TableError::SchemaText("empty schema file".into()))?;
    if first.trim_end_matches('\r') != HEADER {
        return Err(TableError::SchemaText(format!(
            "expected header `{HEADER}`, got `{}`",
            first.trim_end()
        )));
    }
    let mut builder = SchemaBuilder::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        let line = line.trim_end_matches('\r');
        let line_no = i + 2;
        if line.trim().is_empty() || line.trim_start().starts_with('#') {
            continue;
        }
        let (name, decl) = line.split_once(": ").ok_or_else(|| {
            TableError::SchemaText(format!("line {line_no}: expected `name: type`"))
        })?;
        builder = parse_decl(builder, name, decl.trim(), line_no)?;
    }
    builder.build()
}

fn parse_decl(
    builder: SchemaBuilder,
    name: &str,
    decl: &str,
    line_no: usize,
) -> Result<SchemaBuilder, TableError> {
    let bad = |msg: String| TableError::SchemaText(format!("line {line_no}: {msg}"));
    if let Some(rest) = decl.strip_prefix("nominal(") {
        let labels = rest
            .strip_suffix(')')
            .ok_or_else(|| bad("missing `)` after nominal label list".into()))?;
        // Mirror the write-side label rules: an empty label would be
        // indistinguishable from NULL in CSV cells, and `#…` would
        // collide with the out-of-label escape (a hand-written `#5`
        // label would silently read back as code 5).
        for l in labels.split('|') {
            if l.is_empty() {
                return Err(bad("empty nominal label (would be ambiguous with NULL)".into()));
            }
            if l.starts_with('#') {
                return Err(bad(format!(
                    "label `{l}` starts with `#`, which is reserved for the CSV out-of-label escape"
                )));
            }
        }
        return Ok(builder.nominal(name, labels.split('|')));
    }
    for kind in ["numeric", "integer", "date"] {
        if let Some(rest) = decl.strip_prefix(kind) {
            let range = rest
                .trim()
                .strip_prefix('[')
                .and_then(|r| r.strip_suffix(']'))
                .ok_or_else(|| bad(format!("expected `{kind} [min, max]`")))?;
            let (lo, hi) = range
                .split_once(", ")
                .ok_or_else(|| bad("expected `min, max` separated by `, `".into()))?;
            return match kind {
                "date" => {
                    let lo =
                        parse_iso(lo).ok_or_else(|| bad(format!("`{lo}` is not an ISO date")))?;
                    let hi =
                        parse_iso(hi).ok_or_else(|| bad(format!("`{hi}` is not an ISO date")))?;
                    let (ly, lm, ld) = crate::date::civil_from_days(lo);
                    let (hy, hm, hd) = crate::date::civil_from_days(hi);
                    Ok(builder.date_ymd(name, (ly, lm, ld), (hy, hm, hd)))
                }
                _ => {
                    let lo: f64 = lo.parse().map_err(|_| bad(format!("`{lo}` is not a number")))?;
                    let hi: f64 = hi.parse().map_err(|_| bad(format!("`{hi}` is not a number")))?;
                    Ok(if kind == "integer" {
                        builder.integer(name, lo, hi)
                    } else {
                        builder.numeric(name, lo, hi)
                    })
                }
            };
        }
    }
    Err(bad(format!("unknown attribute type in `{decl}`")))
}

/// FNV-1a 64-bit fingerprint of the canonical schema text.
///
/// Serialization-failure cases (names/labels the text format cannot
/// carry) fall back to hashing the debug rendering, so the fingerprint
/// is total — but such schemas cannot be persisted anyway.
pub fn fingerprint(schema: &Schema) -> u64 {
    let text = render_schema(schema).unwrap_or_else(|_| format!("{schema:?}"));
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;

    fn schema() -> Arc<Schema> {
        SchemaBuilder::new()
            .nominal("color", ["red", "green", "blue"])
            .numeric("size", -0.5, 100.25)
            .integer("k", 0.0, 20.0)
            .date_ymd("built", (2000, 1, 1), (2010, 6, 15))
            .build()
            .unwrap()
    }

    #[test]
    fn round_trip() {
        let s = schema();
        let mut buf = Vec::new();
        write_schema(&s, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("dq-schema v1\n"));
        assert!(text.contains("color: nominal(red|green|blue)\n"), "got:\n{text}");
        assert!(text.contains("size: numeric [-0.5, 100.25]\n"), "got:\n{text}");
        assert!(text.contains("built: date [2000-01-01, 2010-06-15]\n"), "got:\n{text}");
        let back = read_schema(buf.as_slice()).unwrap();
        assert_eq!(*back, *s);
        // The canonical rendering is stable across a round-trip.
        assert_eq!(render_schema(&back).unwrap(), text);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "dq-schema v1\n\n# engine codes\na: nominal(x|y)\n";
        let s = read_schema(text.as_bytes()).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.attr(0).name, "a");
    }

    #[test]
    fn rejects_malformed_files() {
        assert!(read_schema("".as_bytes()).is_err());
        assert!(read_schema("dq-schema v99\n".as_bytes()).is_err());
        assert!(read_schema("dq-schema v1\nno-colon-here\n".as_bytes()).is_err());
        assert!(read_schema("dq-schema v1\na: nominal(x\n".as_bytes()).is_err());
        assert!(read_schema("dq-schema v1\na: numeric [1, 2\n".as_bytes()).is_err());
        assert!(read_schema("dq-schema v1\na: numeric [x, 2]\n".as_bytes()).is_err());
        assert!(read_schema("dq-schema v1\na: date [2000-01-01, soon]\n".as_bytes()).is_err());
        assert!(read_schema("dq-schema v1\na: blob [1, 2]\n".as_bytes()).is_err());
        // Labels the CSV layer cannot carry are rejected on read too:
        // `#…` collides with the out-of-label escape, `` with NULL.
        assert!(read_schema("dq-schema v1\na: nominal(#5|y)\n".as_bytes()).is_err());
        assert!(read_schema("dq-schema v1\na: nominal(x|)\n".as_bytes()).is_err());
        // Duplicate names are caught by Schema validation.
        assert!(read_schema("dq-schema v1\na: nominal(x)\na: nominal(y)\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_unserializable_schemas() {
        let s = SchemaBuilder::new().nominal("a", ["with|pipe"]).build().unwrap();
        assert!(matches!(render_schema(&s), Err(TableError::SchemaText(_))));
        let s = SchemaBuilder::new().nominal("a:b", ["x"]).build().unwrap();
        assert!(matches!(render_schema(&s), Err(TableError::SchemaText(_))));
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        let a = schema();
        let b = schema();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_eq!(fingerprint(&a), a.fingerprint());
        // Any domain difference changes the fingerprint.
        let c = SchemaBuilder::new()
            .nominal("color", ["red", "green"])
            .numeric("size", -0.5, 100.25)
            .integer("k", 0.0, 20.0)
            .date_ymd("built", (2000, 1, 1), (2010, 6, 15))
            .build()
            .unwrap();
        assert_ne!(fingerprint(&a), fingerprint(&c));
        // Attribute order matters (positional models depend on it).
        let d = SchemaBuilder::new().nominal("x", ["a"]).nominal("y", ["a"]).build().unwrap();
        let e = SchemaBuilder::new().nominal("y", ["a"]).nominal("x", ["a"]).build().unwrap();
        assert_ne!(fingerprint(&d), fingerprint(&e));
    }
}
