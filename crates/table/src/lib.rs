//! # dq-table — typed columnar tables for data-quality tooling
//!
//! This crate is the data substrate used by every other crate in the
//! workspace. It models the single-relation world of the paper
//! *Systematic Development of Data Mining-Based Data Quality Tools*
//! (Luebbers, Grimmer, Jarke; VLDB 2003):
//!
//! * a [`Schema`] declares attributes of three kinds — **nominal** (finite
//!   label set), **numeric** (bounded real or integer range) and **date**
//!   (bounded day range) — mirroring the QUIS schema description in the
//!   paper ("the majority of QUIS attributes are of nominal type,
//!   furthermore there are a number of attributes of numerical or date
//!   type");
//! * a [`Table`] stores records column-wise with explicit NULLs, supports
//!   in-place cell mutation (required by the polluters), row duplication
//!   and deletion (required by the duplicator polluter) and row iteration
//!   (required by the miners);
//! * [`discretize`] provides the equal-frequency binning used by the
//!   auditing tool to turn numeric class attributes into nominal ones
//!   before decision-tree induction (sec. 5 of the paper);
//! * [`BatchSource`] is the one streaming abstraction every pipeline
//!   stage speaks — bounded [`Table`] batches in row order — with
//!   [`paged`] providing the out-of-core on-disk backend behind it.
//!
//! The crate has no dependencies; everything above it composes through
//! these types.

pub mod batch;
pub mod builder;
pub mod column;
pub mod csv;
pub mod date;
pub mod discretize;
pub mod error;
pub mod paged;
pub mod schema;
pub mod schema_io;
pub mod stats;
pub mod table;
pub mod value;

pub use batch::{BatchSource, ReplaySource, TableBatches};
pub use builder::SchemaBuilder;
pub use column::{Column, TypedCell};
pub use csv::{read_csv, write_csv, CsvChunkReader, CsvWriter, QuarantinedRow};
pub use discretize::{discretize_equal_frequency, discretize_equal_width, Binning};
pub use error::TableError;
pub use paged::{PagedTable, PagedWriter};
pub use schema::{AttrType, Attribute, Schema};
pub use schema_io::{read_schema, render_schema, write_schema};
pub use stats::ColumnSummary;
pub use table::{RowSlice, Table};
pub use value::Value;

/// Index of an attribute within a [`Schema`] (and of the corresponding
/// column within a [`Table`]).
pub type AttrIdx = usize;

/// Index of a row within a [`Table`].
pub type RowIdx = usize;
