//! Minimal CSV import/export for tables.
//!
//! The format is deliberately simple (no quoting of separators inside
//! labels): one header row with attribute names, then one row per
//! record. NULL cells are written as the empty string, nominal cells as
//! their labels, dates as ISO `YYYY-MM-DD`. This is enough to move
//! generated benchmark tables and audit findings in and out of the
//! workspace; it is not a general-purpose CSV engine.

use crate::date::parse_iso;
use crate::error::TableError;
use crate::schema::{AttrType, Schema};
use crate::table::Table;
use crate::value::Value;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::sync::Arc;

/// Write `table` as CSV.
pub fn write_csv<W: Write>(table: &Table, out: W) -> Result<(), TableError> {
    let mut w = BufWriter::new(out);
    let schema = table.schema();
    let names: Vec<&str> = schema.attributes().iter().map(|a| a.name.as_str()).collect();
    writeln!(w, "{}", names.join(","))?;
    for r in 0..table.n_rows() {
        for c in 0..table.n_cols() {
            if c > 0 {
                write!(w, ",")?;
            }
            let v = table.get(r, c);
            if !v.is_null() {
                write!(w, "{}", schema.display_value(c, &v))?;
            }
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Read a CSV stream into a table over the given schema.
///
/// The header must list exactly the schema's attribute names in order.
/// Empty cells become NULL. Nominal cells are matched against the label
/// list; unknown labels are an error (a polluted table round-trips
/// because wrong-value pollution stays within the label space; columns
/// holding out-of-label codes cannot be serialized as labels in the
/// first place).
pub fn read_csv<R: Read>(schema: Arc<Schema>, input: R) -> Result<Table, TableError> {
    let mut reader = BufReader::new(input);
    let mut header = String::new();
    if reader.read_line(&mut header)? == 0 {
        return Err(TableError::Csv("missing header row".into()));
    }
    let names: Vec<&str> = header.trim_end_matches(['\n', '\r']).split(',').collect();
    if names.len() != schema.len() {
        return Err(TableError::Csv(format!(
            "header has {} columns, schema has {}",
            names.len(),
            schema.len()
        )));
    }
    for (i, name) in names.iter().enumerate() {
        if schema.attr(i).name != *name {
            return Err(TableError::Csv(format!(
                "header column {i} is `{name}`, schema expects `{}`",
                schema.attr(i).name
            )));
        }
    }

    let mut table = Table::new(schema.clone());
    let mut record = Vec::with_capacity(schema.len());
    let mut line = String::new();
    let mut line_no = 1usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() {
            continue;
        }
        record.clear();
        let cells: Vec<&str> = trimmed.split(',').collect();
        if cells.len() != schema.len() {
            return Err(TableError::Csv(format!(
                "line {line_no}: {} cells, schema has {}",
                cells.len(),
                schema.len()
            )));
        }
        for (i, cell) in cells.iter().enumerate() {
            record.push(parse_cell(&schema, i, cell, line_no)?);
        }
        table.push_row(&record)?;
    }
    Ok(table)
}

fn parse_cell(
    schema: &Schema,
    col: usize,
    cell: &str,
    line_no: usize,
) -> Result<Value, TableError> {
    if cell.is_empty() {
        return Ok(Value::Null);
    }
    let attr = schema.attr(col);
    match &attr.ty {
        AttrType::Nominal { .. } => attr.code(cell).map(Value::Nominal).ok_or_else(|| {
            TableError::Csv(format!("line {line_no}: `{cell}` is not a label of `{}`", attr.name))
        }),
        AttrType::Numeric { .. } => cell
            .parse::<f64>()
            .map(Value::Number)
            .map_err(|_| TableError::Csv(format!("line {line_no}: `{cell}` is not a number"))),
        AttrType::Date { .. } => parse_iso(cell)
            .map(Value::Date)
            .ok_or_else(|| TableError::Csv(format!("line {line_no}: `{cell}` is not an ISO date"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;

    fn schema() -> Arc<Schema> {
        SchemaBuilder::new()
            .nominal("color", ["red", "green"])
            .numeric("size", 0.0, 100.0)
            .date_ymd("built", (2000, 1, 1), (2010, 1, 1))
            .build()
            .unwrap()
    }

    #[test]
    fn round_trip() {
        let s = schema();
        let mut t = Table::new(s.clone());
        t.push_row(&[Value::Nominal(1), Value::Number(4.5), Value::Null]).unwrap();
        t.push_row(&[
            Value::Null,
            Value::Null,
            Value::Date(crate::date::days_from_civil(2005, 6, 7)),
        ])
        .unwrap();

        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("color,size,built\n"));
        assert!(text.contains("green,4.5,\n"));
        assert!(text.contains(",,2005-06-07\n"));

        let back = read_csv(s, &buf[..]).unwrap();
        assert_eq!(back.n_rows(), 2);
        for r in 0..2 {
            assert_eq!(back.row(r), t.row(r));
        }
    }

    #[test]
    fn rejects_wrong_header() {
        let s = schema();
        assert!(read_csv(s.clone(), "a,b,c\n".as_bytes()).is_err());
        assert!(read_csv(s.clone(), "color,size\n".as_bytes()).is_err());
        assert!(read_csv(s, "".as_bytes()).is_err());
    }

    #[test]
    fn rejects_bad_cells() {
        let s = schema();
        let head = "color,size,built\n";
        assert!(read_csv(s.clone(), format!("{head}mauve,1,\n").as_bytes()).is_err());
        assert!(read_csv(s.clone(), format!("{head}red,xx,\n").as_bytes()).is_err());
        assert!(read_csv(s.clone(), format!("{head}red,1,tuesday\n").as_bytes()).is_err());
        assert!(read_csv(s, format!("{head}red,1\n").as_bytes()).is_err());
    }

    #[test]
    fn skips_blank_lines() {
        let s = schema();
        let t = read_csv(s, "color,size,built\n\nred,1,\n\n".as_bytes()).unwrap();
        assert_eq!(t.n_rows(), 1);
    }
}
