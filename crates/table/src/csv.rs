//! Minimal CSV import/export for tables.
//!
//! The format is deliberately simple (no quoting of separators inside
//! labels): one header row with attribute names, then one row per
//! record. NULL cells are written as the empty string, nominal cells as
//! their labels, dates as ISO `YYYY-MM-DD`. This is enough to move
//! generated benchmark tables and audit findings in and out of the
//! workspace; it is not a general-purpose CSV engine.
//!
//! **Dirty data is representable**: a nominal cell holding a code
//! outside the label list (the switcher polluter produces those)
//! is written as `#<code>` and read back verbatim, and reading checks
//! cell *kinds* only (like [`Table::push_row_lenient`]), so any
//! workspace-generated table — polluted or clean — round-trips
//! exactly. Labels starting with `#` are reserved for this escape.
//!
//! Two readers share one parsing core:
//!
//! * [`read_csv`] materializes the whole stream as a single [`Table`];
//! * [`CsvChunkReader`] iterates the stream as bounded-size [`Table`]
//!   batches, so a file (much) larger than RAM can be scanned at
//!   O(chunk) memory — the substrate of `dq_core`'s streaming
//!   deviation detection.
//!
//! All cell-level errors are reported as [`TableError::CsvCell`] with
//! the 1-based physical line number (the header is line 1) and the
//! column name, so the bad cell can be found in a million-row file.

use crate::date::parse_iso;
use crate::error::TableError;
use crate::schema::{AttrType, Schema};
use crate::table::Table;
use crate::value::Value;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::sync::Arc;

/// Write `table` as CSV.
pub fn write_csv<W: Write>(table: &Table, out: W) -> Result<(), TableError> {
    let mut w = CsvWriter::new(table.schema().clone(), out)?;
    w.write_batch(table)?;
    w.finish()
}

/// A streaming CSV writer: the header goes out at construction, then
/// any number of batches append through [`CsvWriter::write_batch`].
/// Writing a whole in-memory table with [`write_csv`] and streaming
/// the same rows batch-by-batch produce byte-identical files — the
/// equality the O(chunk)-memory `dq generate` path is pinned against.
#[derive(Debug)]
pub struct CsvWriter<W: Write> {
    schema: Arc<Schema>,
    w: BufWriter<W>,
}

impl<W: Write> CsvWriter<W> {
    /// Open a writer over `out` and emit the header row.
    pub fn new(schema: Arc<Schema>, out: W) -> Result<Self, TableError> {
        let mut w = CsvWriter::append(schema, out);
        let names: Vec<&str> = w.schema.attributes().iter().map(|a| a.name.as_str()).collect();
        let header = names.join(",");
        writeln!(w.w, "{header}")?;
        Ok(w)
    }

    /// Open a writer over `out` **without** emitting a header — for
    /// appending to a stream whose header (and a prefix of rows)
    /// already exists, e.g. a checkpointed job resuming a CSV output
    /// truncated to its last committed watermark.
    pub fn append(schema: Arc<Schema>, out: W) -> Self {
        CsvWriter { schema, w: BufWriter::new(out) }
    }

    /// Flush buffered rows to the underlying writer without closing.
    /// After this returns, every row written so far has been handed to
    /// `W` — the barrier a checkpointing job needs before it records a
    /// byte watermark.
    pub fn flush(&mut self) -> Result<(), TableError> {
        self.w.flush()?;
        Ok(())
    }

    /// The underlying writer (e.g. to read a byte counter after
    /// [`CsvWriter::flush`]).
    pub fn get_ref(&self) -> &W {
        self.w.get_ref()
    }

    /// Append every row of `batch` (whose schema must match the
    /// writer's).
    pub fn write_batch(&mut self, batch: &Table) -> Result<(), TableError> {
        if !Arc::ptr_eq(&self.schema, batch.schema()) && *self.schema != **batch.schema() {
            return Err(TableError::SchemaMismatch);
        }
        let schema = &self.schema;
        for r in 0..batch.n_rows() {
            for c in 0..batch.n_cols() {
                if c > 0 {
                    write!(self.w, ",")?;
                }
                match batch.get(r, c) {
                    Value::Null => {}
                    // Out-of-label codes escape as `#<code>` so polluted
                    // tables round-trip.
                    Value::Nominal(code) if schema.attr(c).label(code).is_none() => {
                        write!(self.w, "#{code}")?;
                    }
                    v => write!(self.w, "{}", schema.display_value(c, &v))?,
                }
            }
            writeln!(self.w)?;
        }
        Ok(())
    }

    /// Flush and close the writer.
    pub fn finish(mut self) -> Result<(), TableError> {
        self.w.flush()?;
        Ok(())
    }
}

/// Read a CSV stream into a table over the given schema.
///
/// The header must list exactly the schema's attribute names in order.
/// Empty cells become NULL. Nominal cells are matched against the
/// label list (with the `#<code>` escape for out-of-label codes);
/// unknown labels are an error.
pub fn read_csv<R: Read>(schema: Arc<Schema>, input: R) -> Result<Table, TableError> {
    let mut reader = CsvChunkReader::new(schema.clone(), BufReader::new(input), 1)?;
    let mut table = Table::new(schema);
    let mut record = Vec::with_capacity(table.n_cols());
    while reader.next_record(&mut record)? {
        table.push_row_lenient(&record)?;
    }
    Ok(table)
}

/// A malformed CSV row captured by a quarantining reader instead of
/// aborting the stream (see [`CsvChunkReader::with_quarantine`]): the
/// dead-letter record a degraded audit writes out so every skipped row
/// stays attributable.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedRow {
    /// 1-based physical line number in the stream (header is line 1).
    pub line: usize,
    /// The typed error that made the row unparseable.
    pub error: TableError,
    /// The raw line text (line terminator stripped).
    pub raw: String,
}

/// A bounded-memory CSV reader: iterates the stream as [`Table`]
/// batches of at most `chunk_rows` rows each, over any [`BufRead`].
///
/// The header row is read and validated eagerly by
/// [`CsvChunkReader::new`], so a malformed header fails before any
/// batch is produced. Blank lines are skipped and do not count toward
/// batch sizes; line numbers in errors are physical 1-based stream
/// lines (the header is line 1). After the first error the iterator
/// fuses (returns `None` forever) — a torn stream is not resumable.
#[derive(Debug)]
pub struct CsvChunkReader<R: BufRead> {
    schema: Arc<Schema>,
    reader: R,
    chunk_rows: usize,
    line_no: usize,
    /// Scratch line buffer, reused across rows.
    line: String,
    done: bool,
    rows_emitted: usize,
    /// Out-of-band row count the stream must deliver exactly; see
    /// [`CsvChunkReader::with_expected_rows`].
    expected_rows: Option<usize>,
    /// Error budget for quarantine mode; `None` means any malformed
    /// row is fatal (the default).
    max_bad_rows: Option<usize>,
    /// Malformed rows absorbed so far (in quarantine mode), in stream
    /// order, awaiting [`CsvChunkReader::take_quarantined`]. Bounded
    /// by the error budget.
    quarantined: Vec<QuarantinedRow>,
    /// Total malformed rows absorbed, including already-drained ones.
    quarantined_total: usize,
}

impl<R: BufRead> CsvChunkReader<R> {
    /// Open a chunked reader: reads and validates the header row.
    /// `chunk_rows` is clamped to at least 1.
    pub fn new(schema: Arc<Schema>, mut reader: R, chunk_rows: usize) -> Result<Self, TableError> {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(TableError::Csv("missing header row".into()));
        }
        let names: Vec<&str> = header.trim_end_matches(['\n', '\r']).split(',').collect();
        if names.len() != schema.len() {
            return Err(TableError::Csv(format!(
                "header has {} columns, schema has {}",
                names.len(),
                schema.len()
            )));
        }
        for (i, name) in names.iter().enumerate() {
            if schema.attr(i).name != *name {
                return Err(TableError::Csv(format!(
                    "header column {i} is `{name}`, schema expects `{}`",
                    schema.attr(i).name
                )));
            }
        }
        Ok(CsvChunkReader {
            schema,
            reader,
            chunk_rows: chunk_rows.max(1),
            line_no: 1,
            line: String::new(),
            done: false,
            rows_emitted: 0,
            expected_rows: None,
            max_bad_rows: None,
            quarantined: Vec::new(),
            quarantined_total: 0,
        })
    }

    /// Declare how many data rows the stream must deliver. CSV carries
    /// no framing, so a stream torn exactly at a line boundary is
    /// indistinguishable from a shorter file — unless the consumer
    /// knows the count out of band (a paged manifest, a generator's
    /// row budget, a chaos harness). With an expectation set, an early
    /// end of stream becomes a typed [`TableError::Csv`] naming both
    /// counts instead of a silently truncated relation.
    pub fn with_expected_rows(mut self, n_rows: usize) -> Self {
        self.expected_rows = Some(n_rows);
        self
    }

    /// Switch the reader into quarantine mode: up to `max_bad_rows`
    /// malformed data rows (wrong arity or unparseable cells) are
    /// captured as [`QuarantinedRow`]s instead of aborting the stream.
    /// One malformed row beyond the budget is a typed
    /// [`TableError::QuarantineBudget`]. I/O errors and header errors
    /// are never quarantined — they mean the stream itself is broken,
    /// not a row.
    pub fn with_quarantine(mut self, max_bad_rows: usize) -> Self {
        self.max_bad_rows = Some(max_bad_rows);
        self
    }

    /// Drain the malformed rows captured since the last call, in
    /// stream order. Memory held here is bounded by the error budget.
    pub fn take_quarantined(&mut self) -> Vec<QuarantinedRow> {
        std::mem::take(&mut self.quarantined)
    }

    /// Total malformed rows absorbed so far, drained or not.
    pub fn quarantined_total(&self) -> usize {
        self.quarantined_total
    }

    /// Skip the next `n` data rows without parsing their cells — the
    /// fast-forward a resumed job uses to reposition an input after
    /// rows a previous incarnation already consumed. Skipped rows
    /// count toward [`BatchSource::rows_emitted`] (and the
    /// expected-row check), and line numbering stays physical. End of
    /// stream before `n` rows is a typed error: the input is shorter
    /// than its journal says was already consumed.
    ///
    /// [`BatchSource::rows_emitted`]: crate::batch::BatchSource::rows_emitted
    pub fn skip_data_rows(&mut self, n: usize) -> Result<(), TableError> {
        let mut skipped = 0;
        while skipped < n {
            self.line.clear();
            if self.reader.read_line(&mut self.line)? == 0 {
                return Err(TableError::Csv(format!(
                    "stream ended after {skipped} data rows while skipping {n} \
                     already-consumed rows (line {}) — input shorter than its journal",
                    self.line_no
                )));
            }
            self.line_no += 1;
            if self.line.trim_end_matches(['\n', '\r']).is_empty() {
                continue;
            }
            skipped += 1;
        }
        self.rows_emitted += n;
        Ok(())
    }

    /// The physical line number of the last line read (1-based; the
    /// header is line 1).
    pub fn line_no(&self) -> usize {
        self.line_no
    }

    /// Parse the next data row into `record` (cleared first), skipping
    /// blank lines. `Ok(false)` at end of stream. This is the single
    /// parsing core both [`read_csv`] and the batch iterator run on.
    fn next_record(&mut self, record: &mut Vec<Value>) -> Result<bool, TableError> {
        loop {
            self.line.clear();
            if self.reader.read_line(&mut self.line)? == 0 {
                return Ok(false);
            }
            self.line_no += 1;
            let trimmed = self.line.trim_end_matches(['\n', '\r']);
            if trimmed.is_empty() {
                continue;
            }
            match parse_record(&self.schema, trimmed, self.line_no, record) {
                Ok(()) => return Ok(true),
                Err(e) => match self.max_bad_rows {
                    None => return Err(e),
                    Some(budget) => {
                        if self.quarantined_total >= budget {
                            return Err(TableError::QuarantineBudget {
                                max_bad_rows: budget,
                                line: self.line_no,
                            });
                        }
                        self.quarantined_total += 1;
                        let raw = trimmed.to_string();
                        self.quarantined.push(QuarantinedRow { line: self.line_no, error: e, raw });
                    }
                },
            }
        }
    }

    fn next_batch(&mut self) -> Result<Option<Table>, TableError> {
        let mut batch = Table::new(self.schema.clone());
        let mut record = Vec::with_capacity(self.schema.len());
        while batch.n_rows() < self.chunk_rows && self.next_record(&mut record)? {
            batch.push_row_lenient(&record)?;
        }
        Ok(if batch.is_empty() { None } else { Some(batch) })
    }
}

/// The trait view: same batches as the `Iterator` impl, fused after
/// the end or the first error, with offset bookkeeping.
impl<R: BufRead> crate::batch::BatchSource for CsvChunkReader<R> {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<Table>, TableError> {
        if self.done {
            return Ok(None);
        }
        match CsvChunkReader::next_batch(self) {
            Ok(Some(batch)) => {
                self.rows_emitted += batch.n_rows();
                Ok(Some(batch))
            }
            Ok(None) => {
                self.done = true;
                match self.expected_rows {
                    Some(expected) if expected != self.rows_emitted => {
                        Err(TableError::Csv(format!(
                            "stream ended after {} data rows, expected {expected} \
                             (line {}) — truncated input",
                            self.rows_emitted, self.line_no
                        )))
                    }
                    _ => Ok(None),
                }
            }
            Err(e) => {
                self.done = true;
                Err(e)
            }
        }
    }

    fn rows_emitted(&self) -> usize {
        self.rows_emitted
    }

    fn row_count_hint(&self) -> Option<usize> {
        self.expected_rows
    }
}

impl<R: BufRead> Iterator for CsvChunkReader<R> {
    type Item = Result<Table, TableError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match crate::batch::BatchSource::next_batch(self) {
            Ok(Some(batch)) => Some(Ok(batch)),
            Ok(None) => None,
            Err(e) => Some(Err(e)),
        }
    }
}

/// Parse one non-blank data line into `record` (cleared first): the
/// row-level core shared by the fatal and quarantining paths.
fn parse_record(
    schema: &Schema,
    line: &str,
    line_no: usize,
    record: &mut Vec<Value>,
) -> Result<(), TableError> {
    let cells: Vec<&str> = line.split(',').collect();
    if cells.len() != schema.len() {
        return Err(TableError::Csv(format!(
            "line {line_no}: {} cells, schema has {}",
            cells.len(),
            schema.len()
        )));
    }
    record.clear();
    for (i, cell) in cells.iter().enumerate() {
        record.push(parse_cell(schema, i, cell, line_no)?);
    }
    Ok(())
}

fn parse_cell(
    schema: &Schema,
    col: usize,
    cell: &str,
    line_no: usize,
) -> Result<Value, TableError> {
    if cell.is_empty() {
        return Ok(Value::Null);
    }
    let attr = schema.attr(col);
    let located =
        |message: String| TableError::CsvCell { line: line_no, column: attr.name.clone(), message };
    match &attr.ty {
        AttrType::Nominal { .. } => {
            // `#<code>` is the escape for out-of-label codes written by
            // `write_csv` for polluted cells.
            if let Some(code) = cell.strip_prefix('#') {
                return code
                    .parse::<u32>()
                    .map(Value::Nominal)
                    .map_err(|_| located(format!("`{cell}` is not a `#<code>` escape")));
            }
            attr.code(cell)
                .map(Value::Nominal)
                .ok_or_else(|| located(format!("`{cell}` is not a label of the domain")))
        }
        AttrType::Numeric { .. } => cell
            .parse::<f64>()
            .map(Value::Number)
            .map_err(|_| located(format!("`{cell}` is not a number"))),
        AttrType::Date { .. } => parse_iso(cell)
            .map(Value::Date)
            .ok_or_else(|| located(format!("`{cell}` is not an ISO date"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;

    fn schema() -> Arc<Schema> {
        SchemaBuilder::new()
            .nominal("color", ["red", "green"])
            .numeric("size", 0.0, 100.0)
            .date_ymd("built", (2000, 1, 1), (2010, 1, 1))
            .build()
            .unwrap()
    }

    #[test]
    fn round_trip() {
        let s = schema();
        let mut t = Table::new(s.clone());
        t.push_row(&[Value::Nominal(1), Value::Number(4.5), Value::Null]).unwrap();
        t.push_row(&[
            Value::Null,
            Value::Null,
            Value::Date(crate::date::days_from_civil(2005, 6, 7)),
        ])
        .unwrap();

        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("color,size,built\n"));
        assert!(text.contains("green,4.5,\n"));
        assert!(text.contains(",,2005-06-07\n"));

        let back = read_csv(s, &buf[..]).unwrap();
        assert_eq!(back.n_rows(), 2);
        for r in 0..2 {
            assert_eq!(back.row(r), t.row(r));
        }
    }

    #[test]
    fn rejects_wrong_header() {
        let s = schema();
        assert!(read_csv(s.clone(), "a,b,c\n".as_bytes()).is_err());
        assert!(read_csv(s.clone(), "color,size\n".as_bytes()).is_err());
        assert!(read_csv(s, "".as_bytes()).is_err());
    }

    #[test]
    fn rejects_bad_cells() {
        let s = schema();
        let head = "color,size,built\n";
        assert!(read_csv(s.clone(), format!("{head}mauve,1,\n").as_bytes()).is_err());
        assert!(read_csv(s.clone(), format!("{head}red,xx,\n").as_bytes()).is_err());
        assert!(read_csv(s.clone(), format!("{head}red,1,tuesday\n").as_bytes()).is_err());
        assert!(read_csv(s, format!("{head}red,1\n").as_bytes()).is_err());
    }

    #[test]
    fn cell_errors_carry_line_and_column() {
        let s = schema();
        let input = "color,size,built\nred,1,\n\ngreen,oops,\n";
        let err = read_csv(s, input.as_bytes()).unwrap_err();
        match err {
            TableError::CsvCell { line, ref column, ref message } => {
                // Physical line: header=1, red=2, blank=3, green=4.
                assert_eq!(line, 4);
                assert_eq!(column, "size");
                assert!(message.contains("oops"), "got {message}");
            }
            other => panic!("expected CsvCell, got {other:?}"),
        }
        let shown = err.to_string();
        assert!(shown.contains("line 4"), "got {shown}");
        assert!(shown.contains("`size`"), "got {shown}");
    }

    #[test]
    fn out_of_label_codes_escape_and_round_trip() {
        // The switcher polluter can leave codes outside the label list;
        // they serialize as `#<code>` and read back verbatim.
        let s = schema();
        let mut t = Table::new(s.clone());
        t.push_row_lenient(&[Value::Nominal(7), Value::Number(1e9), Value::Null]).unwrap();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("#7,1000000000,\n"), "got:\n{text}");
        let back = read_csv(s.clone(), &buf[..]).unwrap();
        assert_eq!(back.row(0), t.row(0));
        // A malformed escape is a located error.
        let err = read_csv(s, "color,size,built\n#x,1,\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TableError::CsvCell { line: 2, .. }), "got {err:?}");
    }

    #[test]
    fn skips_blank_lines() {
        let s = schema();
        let t = read_csv(s, "color,size,built\n\nred,1,\n\n".as_bytes()).unwrap();
        assert_eq!(t.n_rows(), 1);
    }

    #[test]
    fn chunk_reader_batches_cover_the_stream() {
        let s = schema();
        let mut t = Table::new(s.clone());
        for i in 0..23 {
            t.push_row(&[Value::Nominal((i % 2) as u32), Value::Number(i as f64), Value::Null])
                .unwrap();
        }
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        for chunk_rows in [1, 2, 7, 23, 100] {
            let reader = CsvChunkReader::new(s.clone(), buf.as_slice(), chunk_rows).unwrap();
            let batches: Vec<Table> = reader.map(|b| b.unwrap()).collect();
            // All but the last batch are full.
            for b in &batches[..batches.len().saturating_sub(1)] {
                assert_eq!(b.n_rows(), chunk_rows);
            }
            let mut row = 0;
            for b in &batches {
                assert!(b.n_rows() >= 1);
                for r in 0..b.n_rows() {
                    assert_eq!(b.row(r), t.row(row), "chunk_rows={chunk_rows}, row {row}");
                    row += 1;
                }
            }
            assert_eq!(row, t.n_rows(), "chunk_rows={chunk_rows}");
        }
    }

    #[test]
    fn chunk_reader_validates_header_eagerly() {
        let s = schema();
        assert!(CsvChunkReader::new(s.clone(), "a,b,c\n".as_bytes(), 4).is_err());
        assert!(CsvChunkReader::new(s, "".as_bytes(), 4).is_err());
    }

    #[test]
    fn chunk_reader_empty_body_yields_no_batches() {
        let s = schema();
        let mut reader = CsvChunkReader::new(s, "color,size,built\n\n".as_bytes(), 4).unwrap();
        assert!(reader.next().is_none());
        assert!(reader.next().is_none());
    }

    #[test]
    fn chunk_reader_fuses_after_an_error() {
        let s = schema();
        let input = "color,size,built\nred,1,\nred,1,\nmauve,1,\nred,1,\n";
        let mut reader = CsvChunkReader::new(s, input.as_bytes(), 2).unwrap();
        assert_eq!(reader.next().unwrap().unwrap().n_rows(), 2);
        let err = reader.next().unwrap().unwrap_err();
        assert!(matches!(err, TableError::CsvCell { line: 4, .. }), "got {err:?}");
        assert!(reader.next().is_none(), "the iterator must fuse after an error");
    }

    #[test]
    fn expected_rows_turns_boundary_truncation_into_a_typed_error() {
        use crate::batch::BatchSource;
        let input = "color,size,built\nred,1,\nred,2,\nred,3,\n";
        // A tear exactly at a line boundary: 3 rows arrive where 5 were
        // promised. Without the expectation this is a silently shorter
        // relation; with it, a typed error naming both counts.
        let mut reader =
            CsvChunkReader::new(schema(), input.as_bytes(), 2).unwrap().with_expected_rows(5);
        assert_eq!(reader.row_count_hint(), Some(5));
        assert!(BatchSource::next_batch(&mut reader).unwrap().is_some());
        let err = loop {
            match BatchSource::next_batch(&mut reader) {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("truncation must not end the stream cleanly"),
                Err(e) => break e,
            }
        };
        let msg = err.to_string();
        assert!(msg.contains('3') && msg.contains('5') && msg.contains("truncated"), "{msg}");
        assert!(matches!(BatchSource::next_batch(&mut reader), Ok(None)), "fused");

        // The exact count passes untouched.
        let mut reader =
            CsvChunkReader::new(schema(), input.as_bytes(), 2).unwrap().with_expected_rows(3);
        while BatchSource::next_batch(&mut reader).unwrap().is_some() {}
        assert_eq!(reader.rows_emitted(), 3);
    }

    #[test]
    fn append_writer_resumes_a_byte_identical_stream() {
        let s = schema();
        let mut t = Table::new(s.clone());
        for i in 0..10 {
            t.push_row(&[Value::Nominal((i % 2) as u32), Value::Number(i as f64), Value::Null])
                .unwrap();
        }
        let mut whole = Vec::new();
        write_csv(&t, &mut whole).unwrap();

        // Write 6 rows with a header, then "crash" and append the rest
        // through a header-less writer — the bytes must be identical.
        let mut resumed = Vec::new();
        let mut w = CsvWriter::new(s.clone(), &mut resumed).unwrap();
        w.write_batch(&t.slice_rows(0, 6).unwrap()).unwrap();
        w.finish().unwrap();
        let mut w = CsvWriter::append(s, &mut resumed);
        w.write_batch(&t.slice_rows(6, 10).unwrap()).unwrap();
        w.finish().unwrap();
        assert_eq!(whole, resumed);
    }

    #[test]
    fn skip_data_rows_fast_forwards_past_consumed_rows() {
        use crate::batch::BatchSource;
        let s = schema();
        let input = "color,size,built\nred,1,\n\nred,2,\nred,3,\nred,4,\n";
        let mut reader = CsvChunkReader::new(s.clone(), input.as_bytes(), 100).unwrap();
        reader.skip_data_rows(2).unwrap();
        assert_eq!(reader.rows_emitted(), 2);
        let batch = BatchSource::next_batch(&mut reader).unwrap().unwrap();
        assert_eq!(batch.n_rows(), 2);
        assert_eq!(batch.get(0, 1), Value::Number(3.0));
        assert_eq!(reader.rows_emitted(), 4);

        // Skipping past the end names both counts.
        let mut reader = CsvChunkReader::new(s, input.as_bytes(), 100).unwrap();
        let err = reader.skip_data_rows(9).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("after 4") && msg.contains("skipping 9"), "{msg}");
    }

    #[test]
    fn quarantine_reroutes_bad_rows_and_keeps_good_ones() {
        use crate::batch::BatchSource;
        let s = schema();
        let input = "color,size,built\nred,1,\nmauve,2,\nred,notanumber,\nred,4,\nred,5\n";
        let mut reader = CsvChunkReader::new(s, input.as_bytes(), 2).unwrap().with_quarantine(10);
        let mut rows = 0;
        while let Some(b) = BatchSource::next_batch(&mut reader).unwrap() {
            rows += b.n_rows();
        }
        assert_eq!(rows, 2, "only the two well-formed rows flow through");
        let quarantined = reader.take_quarantined();
        assert_eq!(reader.quarantined_total(), 3);
        let lines: Vec<usize> = quarantined.iter().map(|q| q.line).collect();
        assert_eq!(lines, vec![3, 4, 6]);
        assert_eq!(quarantined[0].raw, "mauve,2,");
        assert!(matches!(quarantined[0].error, TableError::CsvCell { line: 3, .. }));
        assert!(matches!(quarantined[2].error, TableError::Csv(_)), "arity error quarantines");
        assert!(reader.take_quarantined().is_empty(), "take drains");
    }

    #[test]
    fn quarantine_budget_overflow_is_a_typed_error() {
        use crate::batch::BatchSource;
        let s = schema();
        let input = "color,size,built\nmauve,1,\nmauve,2,\nmauve,3,\nred,4,\n";
        let mut reader = CsvChunkReader::new(s, input.as_bytes(), 100).unwrap().with_quarantine(2);
        let err = loop {
            match BatchSource::next_batch(&mut reader) {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("budget overflow must not end the stream cleanly"),
                Err(e) => break e,
            }
        };
        assert_eq!(err, TableError::QuarantineBudget { max_bad_rows: 2, line: 4 });
        assert!(matches!(BatchSource::next_batch(&mut reader), Ok(None)), "fused");
        assert_eq!(reader.take_quarantined().len(), 2, "budgeted rows were still captured");
    }

    #[test]
    fn chunk_reader_clamps_zero_chunk_rows() {
        let s = schema();
        let input = "color,size,built\nred,1,\n";
        let reader = CsvChunkReader::new(s, input.as_bytes(), 0).unwrap();
        let batches: Vec<Table> = reader.map(|b| b.unwrap()).collect();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].n_rows(), 1);
    }
}
