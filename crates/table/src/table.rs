//! The [`Table`]: a schema plus columnar data.

use crate::column::Column;
use crate::error::TableError;
use crate::schema::Schema;
use crate::value::Value;
use crate::{AttrIdx, RowIdx};
use std::sync::Arc;

/// A single relation: shared schema + columnar storage.
///
/// All mutation is by full record push, by single-cell [`Table::set`]
/// (what the polluters use), or by row duplication / deletion (what the
/// duplicator polluter uses). Cell kinds are enforced; domain membership
/// is not (dirty data must be representable).
#[derive(Debug, Clone)]
pub struct Table {
    schema: Arc<Schema>,
    columns: Vec<Column>,
    n_rows: usize,
}

impl Table {
    /// An empty table over `schema`.
    pub fn new(schema: Arc<Schema>) -> Self {
        let columns = schema.attributes().iter().map(|a| Column::for_type(&a.ty)).collect();
        Table { schema, columns, n_rows: 0 }
    }

    /// Reassemble a table from decoded columns (the paged backend's
    /// door back into memory). Every column must match its attribute's
    /// kind and hold exactly `n_rows` cells.
    pub(crate) fn from_parts(
        schema: Arc<Schema>,
        columns: Vec<Column>,
        n_rows: usize,
    ) -> Result<Self, TableError> {
        if columns.len() != schema.len() {
            return Err(TableError::ArityMismatch { expected: schema.len(), got: columns.len() });
        }
        for (attr, col) in schema.attributes().iter().zip(&columns) {
            let kind_ok = matches!(
                (&attr.ty, col),
                (crate::schema::AttrType::Nominal { .. }, Column::Nominal(_))
                    | (crate::schema::AttrType::Numeric { .. }, Column::Number(_))
                    | (crate::schema::AttrType::Date { .. }, Column::Date(_))
            );
            if !kind_ok || col.len() != n_rows {
                return Err(TableError::TypeMismatch {
                    attribute: attr.name.clone(),
                    value: format!("{} column of {} cells", col.kind_name(), col.len()),
                });
            }
        }
        Ok(Table { schema, columns, n_rows })
    }

    /// An empty table with row capacity pre-reserved.
    pub fn with_capacity(schema: Arc<Schema>, rows: usize) -> Self {
        let mut t = Table::new(schema);
        for c in &mut t.columns {
            c.reserve(rows);
        }
        t
    }

    /// The table's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns (= schema width).
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// `true` if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Append a record after validating it against the schema.
    pub fn push_row(&mut self, record: &[Value]) -> Result<RowIdx, TableError> {
        self.schema.validate_record(record)?;
        for (col, v) in self.columns.iter_mut().zip(record) {
            col.push(*v);
        }
        self.n_rows += 1;
        Ok(self.n_rows - 1)
    }

    /// Append a record checking only arity and cell *kinds*, not
    /// nominal code ranges — the door through which polluted records
    /// enter a table ("dirty data must be representable"); see also
    /// [`Table::set`], which is equally lenient.
    pub fn push_row_lenient(&mut self, record: &[Value]) -> Result<RowIdx, TableError> {
        if record.len() != self.n_cols() {
            return Err(TableError::ArityMismatch { expected: self.n_cols(), got: record.len() });
        }
        for (v, attr) in record.iter().zip(self.schema.attributes()) {
            if !attr.ty.kind_matches(v) {
                return Err(TableError::TypeMismatch {
                    attribute: attr.name.clone(),
                    value: v.to_string(),
                });
            }
        }
        for (col, v) in self.columns.iter_mut().zip(record) {
            col.push(*v);
        }
        self.n_rows += 1;
        Ok(self.n_rows - 1)
    }

    /// The value at (`row`, `col`); panics if out of range.
    #[inline]
    pub fn get(&self, row: RowIdx, col: AttrIdx) -> Value {
        self.columns[col].get(row)
    }

    /// Overwrite the cell at (`row`, `col`), checking bounds and kind.
    pub fn set(&mut self, row: RowIdx, col: AttrIdx, value: Value) -> Result<(), TableError> {
        if row >= self.n_rows {
            return Err(TableError::RowOutOfRange(row));
        }
        let attr = self.schema.attr(col);
        if !attr.ty.kind_matches(&value) {
            return Err(TableError::TypeMismatch {
                attribute: attr.name.clone(),
                value: value.to_string(),
            });
        }
        self.columns[col].set(row, value);
        Ok(())
    }

    /// Copy a full row out as a record.
    pub fn row(&self, row: RowIdx) -> Vec<Value> {
        (0..self.n_cols()).map(|c| self.get(row, c)).collect()
    }

    /// Copy a full row into a caller-provided buffer (no allocation when
    /// iterating many rows with a workhorse buffer).
    pub fn row_into(&self, row: RowIdx, buf: &mut Vec<Value>) {
        buf.clear();
        buf.extend((0..self.n_cols()).map(|c| self.get(row, c)));
    }

    /// Copy a full row into a caller-provided buffer of
    /// [`TypedCell`](crate::column::TypedCell)s — the typed-slice
    /// sibling of [`Table::row_into`] for scans that never need
    /// `Value`s (one enum match per cell, dates pre-widened to their
    /// day number).
    pub fn typed_row_into(&self, row: RowIdx, buf: &mut Vec<crate::column::TypedCell>) {
        buf.clear();
        buf.extend(self.columns.iter().map(|c| c.typed_cell(row)));
    }

    /// Iterate over all rows as records (allocates one `Vec` per row;
    /// prefer [`Table::row_into`] in hot loops).
    pub fn rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.n_rows).map(move |r| self.row(r))
    }

    /// Duplicate `row`, appending the copy as the last row; returns the
    /// new row's index.
    pub fn duplicate_row(&mut self, row: RowIdx) -> Result<RowIdx, TableError> {
        if row >= self.n_rows {
            return Err(TableError::RowOutOfRange(row));
        }
        for col in &mut self.columns {
            col.push_copy_of(row);
        }
        self.n_rows += 1;
        Ok(self.n_rows - 1)
    }

    /// Delete `row`, shifting all later rows up by one (order-
    /// preserving; O(n · columns)).
    pub fn delete_row(&mut self, row: RowIdx) -> Result<(), TableError> {
        if row >= self.n_rows {
            return Err(TableError::RowOutOfRange(row));
        }
        for col in &mut self.columns {
            col.remove(row);
        }
        self.n_rows -= 1;
        Ok(())
    }

    /// Borrow a column.
    pub fn column(&self, col: AttrIdx) -> &Column {
        &self.columns[col]
    }

    /// Append all rows of `other` by columnar bulk copy — how sharded
    /// generators stitch their chunks back together without going
    /// through per-row `Value` records.
    ///
    /// The schemas must agree under the canonical
    /// [`Schema::fingerprint`], not merely per-index: two schemas whose
    /// attributes are permutations of each other can have coinciding
    /// column kinds at every index (so the columnar copy would
    /// *succeed* and silently scramble attribute meanings), which is
    /// exactly what the fingerprint comparison rejects with a typed
    /// [`TableError::SchemaFingerprint`]. Chunks built over the same
    /// `Arc<Schema>` skip the check entirely.
    pub fn append_rows(&mut self, other: &Table) -> Result<(), TableError> {
        if !Arc::ptr_eq(&self.schema, &other.schema) {
            let (expected, got) = (self.schema.fingerprint(), other.schema.fingerprint());
            if expected != got {
                return Err(TableError::SchemaFingerprint { expected, got });
            }
        }
        for (col, o) in self.columns.iter_mut().zip(&other.columns) {
            col.append_from(o);
        }
        self.n_rows += other.n_rows;
        Ok(())
    }

    /// A copy of the contiguous row range `start..end` as a new table
    /// over the same `Arc<Schema>` (columnar bulk copy, no per-row
    /// `Value` records). An empty range yields an empty table.
    pub fn slice_rows(&self, start: RowIdx, end: RowIdx) -> Result<Table, TableError> {
        if start > end || end > self.n_rows {
            return Err(TableError::RowOutOfRange(end));
        }
        let mut out = Table::with_capacity(self.schema.clone(), end - start);
        for (col, o) in out.columns.iter_mut().zip(&self.columns) {
            col.append_range_from(o, start, end);
        }
        out.n_rows = end - start;
        Ok(out)
    }

    /// View this table as a [`BatchSource`](crate::BatchSource) of
    /// `chunk_rows`-row batches — the in-memory canonical
    /// implementation of the trait. `chunk_rows` is clamped to at
    /// least 1; the last batch may be shorter.
    pub fn batches(&self, chunk_rows: usize) -> crate::batch::TableBatches<'_> {
        crate::batch::TableBatches::new(self, chunk_rows)
    }

    /// Count rows whose cell in `col` satisfies `pred`.
    pub fn count_where<F: FnMut(Value) -> bool>(&self, col: AttrIdx, mut pred: F) -> usize {
        (0..self.n_rows).filter(|&r| pred(self.get(r, col))).count()
    }

    /// A new table containing only the rows selected by `keep`
    /// (indices must be in range; order and multiplicity respected).
    pub fn select_rows(&self, keep: &[RowIdx]) -> Result<Table, TableError> {
        let mut out = Table::with_capacity(self.schema.clone(), keep.len());
        let mut buf = Vec::with_capacity(self.n_cols());
        for &r in keep {
            if r >= self.n_rows {
                return Err(TableError::RowOutOfRange(r));
            }
            self.row_into(r, &mut buf);
            for (col, v) in out.columns.iter_mut().zip(&buf) {
                col.push(*v);
            }
            out.n_rows += 1;
        }
        Ok(out)
    }

    /// Split the row range into `n` contiguous, balanced chunks — the
    /// sharding substrate for parallel record scans. Chunk sizes differ
    /// by at most one row; concatenating the chunks' row ranges always
    /// reproduces `0..n_rows` exactly, so a sharded scan visits every
    /// row once and in order. `n` is clamped to at least 1 and at most
    /// `n_rows` (an empty table yields no chunks).
    pub fn chunks(&self, n: usize) -> Vec<RowSlice<'_>> {
        let n = n.clamp(1, self.n_rows.max(1));
        if self.n_rows == 0 {
            return Vec::new();
        }
        let base = self.n_rows / n;
        let extra = self.n_rows % n;
        let mut out = Vec::with_capacity(n);
        let mut start = 0;
        for i in 0..n {
            let len = base + usize::from(i < extra);
            out.push(RowSlice { table: self, start, end: start + len });
            start += len;
        }
        debug_assert_eq!(start, self.n_rows);
        out
    }

    /// Report the positions of all cells whose value lies *outside* the
    /// declared attribute domain (NULLs are never reported). This is the
    /// trivial schema-based scrub the paper contrasts data auditing
    /// against: it can only catch errors that leave the domain.
    pub fn domain_violations(&self) -> Vec<(RowIdx, AttrIdx)> {
        let mut out = Vec::new();
        for (c, attr) in self.schema.attributes().iter().enumerate() {
            for r in 0..self.n_rows {
                let v = self.get(r, c);
                if !v.is_null() && !attr.ty.contains(&v) {
                    out.push((r, c));
                }
            }
        }
        out
    }
}

/// A borrowed view of a contiguous row range of a [`Table`], produced
/// by [`Table::chunks`]. Row indices are **global** table indices, so a
/// per-chunk worker reports findings that merge without translation.
#[derive(Debug, Clone, Copy)]
pub struct RowSlice<'a> {
    table: &'a Table,
    start: RowIdx,
    end: RowIdx,
}

impl<'a> RowSlice<'a> {
    /// The underlying table.
    pub fn table(&self) -> &'a Table {
        self.table
    }

    /// First (global) row index covered by this chunk.
    pub fn start(&self) -> RowIdx {
        self.start
    }

    /// One past the last (global) row index covered by this chunk.
    pub fn end(&self) -> RowIdx {
        self.end
    }

    /// Number of rows in this chunk.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` if the chunk covers no rows.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The chunk's global row indices, in order.
    pub fn rows(&self) -> std::ops::Range<RowIdx> {
        self.start..self.end
    }

    /// The value at (global `row`, `col`); panics if `row` lies outside
    /// this chunk.
    pub fn get(&self, row: RowIdx, col: AttrIdx) -> Value {
        assert!(self.rows().contains(&row), "row {row} outside chunk {}..{}", self.start, self.end);
        self.table.get(row, col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, Attribute};

    fn small_schema() -> Arc<Schema> {
        Schema::shared(vec![
            Attribute::new(
                "color",
                AttrType::Nominal { labels: vec!["red".into(), "green".into()] },
            ),
            Attribute::new("size", AttrType::Numeric { min: 0.0, max: 100.0, integer: false }),
            Attribute::new("built", AttrType::Date { min: 0, max: 20000 }),
        ])
        .unwrap()
    }

    fn small_table() -> Table {
        let mut t = Table::new(small_schema());
        t.push_row(&[Value::Nominal(0), Value::Number(10.0), Value::Date(100)]).unwrap();
        t.push_row(&[Value::Nominal(1), Value::Null, Value::Date(200)]).unwrap();
        t.push_row(&[Value::Null, Value::Number(30.0), Value::Null]).unwrap();
        t
    }

    #[test]
    fn push_and_get() {
        let t = small_table();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.get(0, 0), Value::Nominal(0));
        assert_eq!(t.get(1, 1), Value::Null);
        assert_eq!(t.get(2, 2), Value::Null);
    }

    #[test]
    fn push_rejects_bad_records() {
        let mut t = small_table();
        assert!(t.push_row(&[Value::Nominal(0), Value::Number(1.0)]).is_err());
        assert!(t.push_row(&[Value::Number(0.0), Value::Number(1.0), Value::Date(0)]).is_err());
    }

    #[test]
    fn set_checks_bounds_and_kind() {
        let mut t = small_table();
        t.set(0, 1, Value::Number(99.0)).unwrap();
        assert_eq!(t.get(0, 1), Value::Number(99.0));
        assert!(matches!(t.set(9, 0, Value::Null), Err(TableError::RowOutOfRange(9))));
        assert!(matches!(t.set(0, 0, Value::Number(1.0)), Err(TableError::TypeMismatch { .. })));
    }

    #[test]
    fn set_allows_out_of_domain_values() {
        // Polluters must be able to write values the domain forbids.
        let mut t = small_table();
        t.set(0, 1, Value::Number(1e9)).unwrap();
        t.set(0, 0, Value::Nominal(77)).unwrap();
        assert_eq!(t.get(0, 1), Value::Number(1e9));
        let viols = t.domain_violations();
        assert!(viols.contains(&(0, 0)));
        assert!(viols.contains(&(0, 1)));
        assert_eq!(viols.len(), 2);
    }

    #[test]
    fn lenient_push_allows_out_of_domain_codes() {
        let mut t = small_table();
        // Out-of-domain nominal code: rejected strictly, accepted leniently.
        assert!(t.push_row(&[Value::Nominal(9), Value::Null, Value::Null]).is_err());
        let r = t.push_row_lenient(&[Value::Nominal(9), Value::Null, Value::Null]).unwrap();
        assert_eq!(t.get(r, 0), Value::Nominal(9));
        // Kind mismatches stay rejected.
        assert!(t.push_row_lenient(&[Value::Number(1.0), Value::Null, Value::Null]).is_err());
        assert!(t.push_row_lenient(&[Value::Null]).is_err());
    }

    #[test]
    fn duplicate_and_delete() {
        let mut t = small_table();
        let new = t.duplicate_row(1).unwrap();
        assert_eq!(new, 3);
        assert_eq!(t.row(3), t.row(1));
        t.delete_row(0).unwrap();
        assert_eq!(t.n_rows(), 3);
        // Former row 1 moved up to index 0.
        assert_eq!(t.get(0, 0), Value::Nominal(1));
        assert!(t.delete_row(10).is_err());
    }

    #[test]
    fn select_rows_respects_order_and_multiplicity() {
        let t = small_table();
        let s = t.select_rows(&[2, 0, 0]).unwrap();
        assert_eq!(s.n_rows(), 3);
        assert_eq!(s.row(0), t.row(2));
        assert_eq!(s.row(1), t.row(0));
        assert_eq!(s.row(2), t.row(0));
        assert!(t.select_rows(&[99]).is_err());
    }

    #[test]
    fn row_into_reuses_buffer() {
        let t = small_table();
        let mut buf = Vec::new();
        t.row_into(1, &mut buf);
        assert_eq!(buf, t.row(1));
        t.row_into(0, &mut buf);
        assert_eq!(buf, t.row(0));
    }

    #[test]
    fn typed_rows_mirror_value_rows() {
        let t = small_table();
        let mut buf = Vec::new();
        for r in 0..t.n_rows() {
            t.typed_row_into(r, &mut buf);
            assert_eq!(buf.len(), t.n_cols());
            for (c, cell) in buf.iter().enumerate() {
                let v = t.get(r, c);
                assert_eq!(cell.as_nominal(), v.as_nominal(), "({r},{c})");
                assert_eq!(cell.as_numeric(), v.as_numeric(), "({r},{c})");
            }
        }
    }

    #[test]
    fn chunks_partition_the_row_range() {
        let mut t = small_table();
        while t.n_rows() < 10 {
            t.duplicate_row(0).unwrap();
        }
        for n in [1, 2, 3, 4, 7, 10, 11, 100] {
            let chunks = t.chunks(n);
            assert!(chunks.len() <= t.n_rows(), "n={n}");
            let all: Vec<usize> = chunks.iter().flat_map(|c| c.rows()).collect();
            assert_eq!(all, (0..t.n_rows()).collect::<Vec<_>>(), "n={n}");
            // Balanced: sizes differ by at most one.
            let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "n={n}, sizes {sizes:?}");
        }
    }

    #[test]
    fn chunks_edge_cases() {
        let empty = Table::new(small_schema());
        assert!(empty.chunks(4).is_empty());
        assert!(empty.chunks(0).is_empty());
        let t = small_table(); // 3 rows
        let chunks = t.chunks(0); // clamps to 1
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].rows(), 0..3);
        let wide = t.chunks(99); // clamps to n_rows singleton chunks
        assert_eq!(wide.len(), 3);
        assert!(wide.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn row_slice_reads_through_to_the_table() {
        let t = small_table();
        let chunks = t.chunks(2);
        assert_eq!(chunks[0].table().n_rows(), 3);
        assert_eq!(chunks[0].start(), 0);
        assert_eq!(chunks[0].end(), 2);
        assert!(!chunks[0].is_empty());
        assert_eq!(chunks[0].get(1, 0), t.get(1, 0));
        assert_eq!(chunks[1].get(2, 2), t.get(2, 2));
    }

    #[test]
    #[should_panic(expected = "outside chunk")]
    fn row_slice_rejects_out_of_chunk_rows() {
        let t = small_table();
        let chunks = t.chunks(2);
        let _ = chunks[0].get(2, 0);
    }

    #[test]
    fn append_rows_rejects_permuted_but_kind_compatible_schemas() {
        // Two schemas that are attribute permutations of each other:
        // per-index column kinds coincide (both nominal, then numeric),
        // so the raw columnar copy would succeed and scramble the
        // attribute meanings. The canonical fingerprint must refuse.
        let a = Schema::shared(vec![
            Attribute::new("first", AttrType::Nominal { labels: vec!["x".into(), "y".into()] }),
            Attribute::new("second", AttrType::Nominal { labels: vec!["p".into(), "q".into()] }),
            Attribute::new("size", AttrType::Numeric { min: 0.0, max: 1.0, integer: false }),
        ])
        .unwrap();
        let b = Schema::shared(vec![
            Attribute::new("second", AttrType::Nominal { labels: vec!["p".into(), "q".into()] }),
            Attribute::new("first", AttrType::Nominal { labels: vec!["x".into(), "y".into()] }),
            Attribute::new("size", AttrType::Numeric { min: 0.0, max: 1.0, integer: false }),
        ])
        .unwrap();
        let mut into = Table::new(a.clone());
        let mut from = Table::new(b.clone());
        from.push_row(&[Value::Nominal(0), Value::Nominal(1), Value::Number(0.5)]).unwrap();
        match into.append_rows(&from) {
            Err(TableError::SchemaFingerprint { expected, got }) => {
                assert_eq!(expected, a.fingerprint());
                assert_eq!(got, b.fingerprint());
            }
            other => panic!("expected SchemaFingerprint, got {other:?}"),
        }
        assert_eq!(into.n_rows(), 0, "a rejected append must not grow the table");
        // Equal-fingerprint schemas append fine even through distinct Arcs.
        let a2 = Schema::shared(a.attributes().to_vec()).unwrap();
        let mut twin = Table::new(a2);
        let mut source = Table::new(a);
        source.push_row(&[Value::Nominal(1), Value::Nominal(0), Value::Number(0.25)]).unwrap();
        twin.append_rows(&source).unwrap();
        assert_eq!(twin.n_rows(), 1);
    }

    #[test]
    fn slice_rows_copies_ranges() {
        let t = small_table();
        let s = t.slice_rows(1, 3).unwrap();
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.row(0), t.row(1));
        assert_eq!(s.row(1), t.row(2));
        assert!(Arc::ptr_eq(s.schema(), t.schema()));
        assert!(t.slice_rows(1, 1).unwrap().is_empty());
        assert!(t.slice_rows(0, 4).is_err());
        assert!(t.slice_rows(2, 1).is_err());
    }

    #[test]
    fn count_where_counts() {
        let t = small_table();
        assert_eq!(t.count_where(1, |v| v.is_null()), 1);
        assert_eq!(t.count_where(0, |v| v == Value::Nominal(0)), 1);
    }
}
