//! Proleptic-Gregorian day-number arithmetic.
//!
//! Dates are stored in tables as `i64` day numbers relative to
//! 1970-01-01 (day 0). The conversions below are the classic
//! `days_from_civil` / `civil_from_days` algorithms (Howard Hinnant),
//! exact over the whole proleptic Gregorian calendar.

/// Day number of a civil date `(year, month, day)`, relative to
/// 1970-01-01. Months are 1-12, days 1-31.
pub fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    debug_assert!((1..=12).contains(&m), "month out of range");
    debug_assert!((1..=31).contains(&d), "day out of range");
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // [0, 11], March = 0
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Civil date `(year, month, day)` of a day number relative to
/// 1970-01-01. Inverse of [`days_from_civil`].
pub fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Parse an ISO `YYYY-MM-DD` string into a day number.
pub fn parse_iso(s: &str) -> Option<i64> {
    let mut parts = s.splitn(3, '-');
    // A leading '-' would make the year part empty; QUIS-era data does
    // not carry BCE dates, so reject them rather than guessing.
    let y: i64 = parts.next()?.parse().ok()?;
    let m: u32 = parts.next()?.parse().ok()?;
    let d: u32 = parts.next()?.parse().ok()?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    // Round-trip to reject impossible dates such as Feb 30.
    let days = days_from_civil(y, m, d);
    if civil_from_days(days) == (y, m, d) {
        Some(days)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn known_dates() {
        // VLDB 2003 conference opening day.
        assert_eq!(civil_from_days(days_from_civil(2003, 9, 9)), (2003, 9, 9));
        assert_eq!(days_from_civil(2000, 3, 1), 11017);
        assert_eq!(days_from_civil(1969, 12, 31), -1);
    }

    #[test]
    fn leap_years() {
        assert_eq!(days_from_civil(2000, 2, 29) + 1, days_from_civil(2000, 3, 1));
        // 1900 is not a leap year in the Gregorian calendar.
        assert_eq!(parse_iso("1900-02-29"), None);
        assert!(parse_iso("2000-02-29").is_some());
    }

    #[test]
    fn round_trip_over_two_centuries() {
        let lo = days_from_civil(1900, 1, 1);
        let hi = days_from_civil(2100, 1, 1);
        let mut prev = civil_from_days(lo - 1);
        for z in lo..=hi {
            let cur = civil_from_days(z);
            assert_eq!(days_from_civil(cur.0, cur.1, cur.2), z);
            assert!(cur != prev, "dates must strictly advance");
            prev = cur;
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(parse_iso(""), None);
        assert_eq!(parse_iso("2003-13-01"), None);
        assert_eq!(parse_iso("2003-00-10"), None);
        assert_eq!(parse_iso("2003-02-30"), None);
        assert_eq!(parse_iso("03/02/2003"), None);
        assert_eq!(parse_iso("2003-09-09"), Some(days_from_civil(2003, 9, 9)));
    }
}
