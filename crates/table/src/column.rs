//! Typed column storage.

use crate::value::Value;

/// One column of a table, stored as a typed vector with per-cell NULLs.
///
/// Columns never change their kind after creation; the kind always
/// matches the schema's attribute type. Out-of-domain payloads (e.g. a
/// nominal code past the label list after pollution, or a number beyond
/// the declared range) are representable on purpose — dirty data is the
/// whole point of this workspace.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Codes into the attribute's nominal label list.
    Nominal(Vec<Option<u32>>),
    /// Floating-point numbers.
    Number(Vec<Option<f64>>),
    /// Day numbers (see [`crate::date`]).
    Date(Vec<Option<i64>>),
}

impl Column {
    /// An empty column matching the given attribute type.
    pub fn for_type(ty: &crate::schema::AttrType) -> Column {
        match ty {
            crate::schema::AttrType::Nominal { .. } => Column::Nominal(Vec::new()),
            crate::schema::AttrType::Numeric { .. } => Column::Number(Vec::new()),
            crate::schema::AttrType::Date { .. } => Column::Date(Vec::new()),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        match self {
            Column::Nominal(v) => v.len(),
            Column::Number(v) => v.len(),
            Column::Date(v) => v.len(),
        }
    }

    /// `true` if the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserve capacity for `additional` more cells.
    pub fn reserve(&mut self, additional: usize) {
        match self {
            Column::Nominal(v) => v.reserve(additional),
            Column::Number(v) => v.reserve(additional),
            Column::Date(v) => v.reserve(additional),
        }
    }

    /// The value at `row`; panics if out of range.
    #[inline]
    pub fn get(&self, row: usize) -> Value {
        match self {
            Column::Nominal(v) => v[row].map_or(Value::Null, Value::Nominal),
            Column::Number(v) => v[row].map_or(Value::Null, Value::Number),
            Column::Date(v) => v[row].map_or(Value::Null, Value::Date),
        }
    }

    /// Overwrite the value at `row`.
    ///
    /// Panics if the value kind does not match the column kind (NULL
    /// always matches) or if `row` is out of range. Kind safety is
    /// checked by [`crate::Table::set`] with a proper error before it
    /// delegates here.
    #[inline]
    pub fn set(&mut self, row: usize, value: Value) {
        match (self, value) {
            (Column::Nominal(v), Value::Null) => v[row] = None,
            (Column::Nominal(v), Value::Nominal(c)) => v[row] = Some(c),
            (Column::Number(v), Value::Null) => v[row] = None,
            (Column::Number(v), Value::Number(x)) => v[row] = Some(x),
            (Column::Date(v), Value::Null) => v[row] = None,
            (Column::Date(v), Value::Date(d)) => v[row] = Some(d),
            (col, v) => panic!("value {v:?} does not fit column kind {:?}", col.kind_name()),
        }
    }

    /// Append a value; same kind rules as [`Column::set`].
    #[inline]
    pub fn push(&mut self, value: Value) {
        match (self, value) {
            (Column::Nominal(v), Value::Null) => v.push(None),
            (Column::Nominal(v), Value::Nominal(c)) => v.push(Some(c)),
            (Column::Number(v), Value::Null) => v.push(None),
            (Column::Number(v), Value::Number(x)) => v.push(Some(x)),
            (Column::Date(v), Value::Null) => v.push(None),
            (Column::Date(v), Value::Date(d)) => v.push(Some(d)),
            (col, v) => panic!("value {v:?} does not fit column kind {:?}", col.kind_name()),
        }
    }

    /// Remove the cell at `row`, shifting later cells up (order-
    /// preserving, O(n)).
    pub fn remove(&mut self, row: usize) {
        match self {
            Column::Nominal(v) => {
                v.remove(row);
            }
            Column::Number(v) => {
                v.remove(row);
            }
            Column::Date(v) => {
                v.remove(row);
            }
        }
    }

    /// Duplicate the cell at `row`, appending the copy at the end.
    pub fn push_copy_of(&mut self, row: usize) {
        match self {
            Column::Nominal(v) => {
                let x = v[row];
                v.push(x);
            }
            Column::Number(v) => {
                let x = v[row];
                v.push(x);
            }
            Column::Date(v) => {
                let x = v[row];
                v.push(x);
            }
        }
    }

    /// Count of NULL cells.
    pub fn null_count(&self) -> usize {
        match self {
            Column::Nominal(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Number(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Date(v) => v.iter().filter(|x| x.is_none()).count(),
        }
    }

    /// Short kind name for diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Column::Nominal(_) => "nominal",
            Column::Number(_) => "number",
            Column::Date(_) => "date",
        }
    }

    /// Direct access to the codes of a nominal column.
    pub fn as_nominal(&self) -> Option<&[Option<u32>]> {
        match self {
            Column::Nominal(v) => Some(v),
            _ => None,
        }
    }

    /// Direct access to the payloads of a number column.
    pub fn as_number(&self) -> Option<&[Option<f64>]> {
        match self {
            Column::Number(v) => Some(v),
            _ => None,
        }
    }

    /// Direct access to the day numbers of a date column.
    pub fn as_date(&self) -> Option<&[Option<i64>]> {
        match self {
            Column::Date(v) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrType;

    #[test]
    fn push_get_set_round_trip() {
        let mut c = Column::for_type(&AttrType::Nominal { labels: vec!["a".into()] });
        c.push(Value::Nominal(0));
        c.push(Value::Null);
        assert_eq!(c.get(0), Value::Nominal(0));
        assert_eq!(c.get(1), Value::Null);
        c.set(1, Value::Nominal(5));
        assert_eq!(c.get(1), Value::Nominal(5));
        assert_eq!(c.len(), 2);
        assert_eq!(c.null_count(), 0);
    }

    #[test]
    #[should_panic(expected = "does not fit column kind")]
    fn kind_mismatch_panics() {
        let mut c = Column::Number(vec![]);
        c.push(Value::Nominal(0));
    }

    #[test]
    fn remove_preserves_order() {
        let mut c = Column::Number(vec![Some(1.0), Some(2.0), Some(3.0)]);
        c.remove(1);
        assert_eq!(c.get(0), Value::Number(1.0));
        assert_eq!(c.get(1), Value::Number(3.0));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn push_copy_duplicates() {
        let mut c = Column::Date(vec![Some(7), None]);
        c.push_copy_of(0);
        c.push_copy_of(1);
        assert_eq!(c.get(2), Value::Date(7));
        assert_eq!(c.get(3), Value::Null);
    }
}
