//! Typed column storage.

use crate::value::Value;

/// A single cell read out of a typed column without going through the
/// [`Value`] enum: nominal columns yield codes, ordered (number/date)
/// columns yield the numeric widening [`Value::as_numeric`] performs.
/// This is the shape hot scans cache one row of — the distinction that
/// matters to them is "code or number", not the full value kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TypedCell {
    /// A nominal column's cell: the code, `None` for NULL.
    Nominal(Option<u32>),
    /// An ordered column's cell: the widened payload, `None` for NULL.
    Numeric(Option<f64>),
}

impl TypedCell {
    /// The nominal code — mirrors `Value::as_nominal` on the cell's
    /// value (`None` for NULLs and for ordered columns).
    #[inline]
    pub fn as_nominal(self) -> Option<u32> {
        match self {
            TypedCell::Nominal(c) => c,
            TypedCell::Numeric(_) => None,
        }
    }

    /// The numeric payload — mirrors `Value::as_numeric` on the cell's
    /// value (`None` for NULLs and for nominal columns).
    #[inline]
    pub fn as_numeric(self) -> Option<f64> {
        match self {
            TypedCell::Numeric(x) => x,
            TypedCell::Nominal(_) => None,
        }
    }
}

/// One column of a table, stored as a typed vector with per-cell NULLs.
///
/// Columns never change their kind after creation; the kind always
/// matches the schema's attribute type. Out-of-domain payloads (e.g. a
/// nominal code past the label list after pollution, or a number beyond
/// the declared range) are representable on purpose — dirty data is the
/// whole point of this workspace.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Codes into the attribute's nominal label list.
    Nominal(Vec<Option<u32>>),
    /// Floating-point numbers.
    Number(Vec<Option<f64>>),
    /// Day numbers (see [`crate::date`]).
    Date(Vec<Option<i64>>),
}

impl Column {
    /// An empty column matching the given attribute type.
    pub fn for_type(ty: &crate::schema::AttrType) -> Column {
        match ty {
            crate::schema::AttrType::Nominal { .. } => Column::Nominal(Vec::new()),
            crate::schema::AttrType::Numeric { .. } => Column::Number(Vec::new()),
            crate::schema::AttrType::Date { .. } => Column::Date(Vec::new()),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        match self {
            Column::Nominal(v) => v.len(),
            Column::Number(v) => v.len(),
            Column::Date(v) => v.len(),
        }
    }

    /// `true` if the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserve capacity for `additional` more cells.
    pub fn reserve(&mut self, additional: usize) {
        match self {
            Column::Nominal(v) => v.reserve(additional),
            Column::Number(v) => v.reserve(additional),
            Column::Date(v) => v.reserve(additional),
        }
    }

    /// The value at `row`; panics if out of range.
    #[inline]
    pub fn get(&self, row: usize) -> Value {
        match self {
            Column::Nominal(v) => v[row].map_or(Value::Null, Value::Nominal),
            Column::Number(v) => v[row].map_or(Value::Null, Value::Number),
            Column::Date(v) => v[row].map_or(Value::Null, Value::Date),
        }
    }

    /// Overwrite the value at `row`.
    ///
    /// Panics if the value kind does not match the column kind (NULL
    /// always matches) or if `row` is out of range. Kind safety is
    /// checked by [`crate::Table::set`] with a proper error before it
    /// delegates here.
    #[inline]
    pub fn set(&mut self, row: usize, value: Value) {
        match (self, value) {
            (Column::Nominal(v), Value::Null) => v[row] = None,
            (Column::Nominal(v), Value::Nominal(c)) => v[row] = Some(c),
            (Column::Number(v), Value::Null) => v[row] = None,
            (Column::Number(v), Value::Number(x)) => v[row] = Some(x),
            (Column::Date(v), Value::Null) => v[row] = None,
            (Column::Date(v), Value::Date(d)) => v[row] = Some(d),
            (col, v) => panic!("value {v:?} does not fit column kind {:?}", col.kind_name()),
        }
    }

    /// Append a value; same kind rules as [`Column::set`].
    #[inline]
    pub fn push(&mut self, value: Value) {
        match (self, value) {
            (Column::Nominal(v), Value::Null) => v.push(None),
            (Column::Nominal(v), Value::Nominal(c)) => v.push(Some(c)),
            (Column::Number(v), Value::Null) => v.push(None),
            (Column::Number(v), Value::Number(x)) => v.push(Some(x)),
            (Column::Date(v), Value::Null) => v.push(None),
            (Column::Date(v), Value::Date(d)) => v.push(Some(d)),
            (col, v) => panic!("value {v:?} does not fit column kind {:?}", col.kind_name()),
        }
    }

    /// Append every cell of `other` (which must be of the same kind) —
    /// the columnar bulk move behind [`crate::Table::append_rows`].
    pub fn append_from(&mut self, other: &Column) {
        match (self, other) {
            (Column::Nominal(v), Column::Nominal(o)) => v.extend_from_slice(o),
            (Column::Number(v), Column::Number(o)) => v.extend_from_slice(o),
            (Column::Date(v), Column::Date(o)) => v.extend_from_slice(o),
            (col, other) => panic!(
                "cannot append {:?} column to {:?} column",
                other.kind_name(),
                col.kind_name()
            ),
        }
    }

    /// Append the cells `start..end` of `other` (which must be of the
    /// same kind) — the range sibling of [`Column::append_from`],
    /// behind [`crate::Table::slice_rows`].
    pub fn append_range_from(&mut self, other: &Column, start: usize, end: usize) {
        match (self, other) {
            (Column::Nominal(v), Column::Nominal(o)) => v.extend_from_slice(&o[start..end]),
            (Column::Number(v), Column::Number(o)) => v.extend_from_slice(&o[start..end]),
            (Column::Date(v), Column::Date(o)) => v.extend_from_slice(&o[start..end]),
            (col, other) => panic!(
                "cannot append {:?} column to {:?} column",
                other.kind_name(),
                col.kind_name()
            ),
        }
    }

    /// Remove the cell at `row`, shifting later cells up (order-
    /// preserving, O(n)).
    pub fn remove(&mut self, row: usize) {
        match self {
            Column::Nominal(v) => {
                v.remove(row);
            }
            Column::Number(v) => {
                v.remove(row);
            }
            Column::Date(v) => {
                v.remove(row);
            }
        }
    }

    /// Duplicate the cell at `row`, appending the copy at the end.
    pub fn push_copy_of(&mut self, row: usize) {
        match self {
            Column::Nominal(v) => {
                let x = v[row];
                v.push(x);
            }
            Column::Number(v) => {
                let x = v[row];
                v.push(x);
            }
            Column::Date(v) => {
                let x = v[row];
                v.push(x);
            }
        }
    }

    /// Count of NULL cells.
    pub fn null_count(&self) -> usize {
        match self {
            Column::Nominal(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Number(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Date(v) => v.iter().filter(|x| x.is_none()).count(),
        }
    }

    /// Short kind name for diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Column::Nominal(_) => "nominal",
            Column::Number(_) => "number",
            Column::Date(_) => "date",
        }
    }

    /// The nominal code at `row`, without constructing a [`Value`]:
    /// `Some(code)` only when this is a nominal column with a non-NULL
    /// cell — exactly `self.get(row).as_nominal()`, minus the enum
    /// round-trip. This is the typed per-cell accessor the flattened
    /// tree evaluator classifies through.
    #[inline]
    pub fn nominal_at(&self, row: usize) -> Option<u32> {
        match self {
            Column::Nominal(v) => v[row],
            _ => None,
        }
    }

    /// The numeric payload at `row`, widening dates to their day number
    /// — exactly `self.get(row).as_numeric()`, minus the enum
    /// round-trip. `None` for NULL cells and nominal columns.
    #[inline]
    pub fn numeric_at(&self, row: usize) -> Option<f64> {
        match self {
            Column::Number(v) => v[row],
            Column::Date(v) => v[row].map(|d| d as f64),
            Column::Nominal(_) => None,
        }
    }

    /// The cell at `row` as a [`TypedCell`] (one enum match instead of
    /// a `Value` round-trip per accessor call).
    #[inline]
    pub fn typed_cell(&self, row: usize) -> TypedCell {
        match self {
            Column::Nominal(v) => TypedCell::Nominal(v[row]),
            Column::Number(v) => TypedCell::Numeric(v[row]),
            Column::Date(v) => TypedCell::Numeric(v[row].map(|d| d as f64)),
        }
    }

    /// `true` iff the cell at `row` is NULL.
    #[inline]
    pub fn is_null_at(&self, row: usize) -> bool {
        match self {
            Column::Nominal(v) => v[row].is_none(),
            Column::Number(v) => v[row].is_none(),
            Column::Date(v) => v[row].is_none(),
        }
    }

    /// Direct access to the codes of a nominal column.
    pub fn as_nominal(&self) -> Option<&[Option<u32>]> {
        match self {
            Column::Nominal(v) => Some(v),
            _ => None,
        }
    }

    /// Direct access to the payloads of a number column.
    pub fn as_number(&self) -> Option<&[Option<f64>]> {
        match self {
            Column::Number(v) => Some(v),
            _ => None,
        }
    }

    /// Direct access to the day numbers of a date column.
    pub fn as_date(&self) -> Option<&[Option<i64>]> {
        match self {
            Column::Date(v) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrType;

    #[test]
    fn push_get_set_round_trip() {
        let mut c = Column::for_type(&AttrType::Nominal { labels: vec!["a".into()] });
        c.push(Value::Nominal(0));
        c.push(Value::Null);
        assert_eq!(c.get(0), Value::Nominal(0));
        assert_eq!(c.get(1), Value::Null);
        c.set(1, Value::Nominal(5));
        assert_eq!(c.get(1), Value::Nominal(5));
        assert_eq!(c.len(), 2);
        assert_eq!(c.null_count(), 0);
    }

    #[test]
    #[should_panic(expected = "does not fit column kind")]
    fn kind_mismatch_panics() {
        let mut c = Column::Number(vec![]);
        c.push(Value::Nominal(0));
    }

    #[test]
    fn remove_preserves_order() {
        let mut c = Column::Number(vec![Some(1.0), Some(2.0), Some(3.0)]);
        c.remove(1);
        assert_eq!(c.get(0), Value::Number(1.0));
        assert_eq!(c.get(1), Value::Number(3.0));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn typed_per_cell_accessors_mirror_value_accessors() {
        let nom = Column::Nominal(vec![Some(3), None]);
        let num = Column::Number(vec![Some(2.5), None]);
        let date = Column::Date(vec![Some(7), None]);
        for (col, row) in [(&nom, 0), (&nom, 1), (&num, 0), (&num, 1), (&date, 0), (&date, 1)] {
            assert_eq!(col.nominal_at(row), col.get(row).as_nominal());
            assert_eq!(col.numeric_at(row), col.get(row).as_numeric());
            assert_eq!(col.is_null_at(row), col.get(row).is_null());
        }
        assert_eq!(nom.nominal_at(0), Some(3));
        assert_eq!(num.numeric_at(0), Some(2.5));
        assert_eq!(date.numeric_at(0), Some(7.0));
        assert!(date.is_null_at(1));
    }

    #[test]
    fn push_copy_duplicates() {
        let mut c = Column::Date(vec![Some(7), None]);
        c.push_copy_of(0);
        c.push_copy_of(1);
        assert_eq!(c.get(2), Value::Date(7));
        assert_eq!(c.get(3), Value::Null);
    }
}
