//! Fluent schema construction.

use crate::date::days_from_civil;
use crate::error::TableError;
use crate::schema::{AttrType, Attribute, Schema};
use std::sync::Arc;

/// Fluent builder for [`Schema`]s.
///
/// ```
/// use dq_table::SchemaBuilder;
///
/// let schema = SchemaBuilder::new()
///     .nominal("BRV", ["404", "501", "611"])
///     .integer("POWER_KW", 20.0, 500.0)
///     .numeric("DISPLACEMENT", 0.6, 8.0)
///     .date_ymd("PROD_DATE", (1990, 1, 1), (2003, 12, 31))
///     .build()
///     .unwrap();
/// assert_eq!(schema.len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    attributes: Vec<Attribute>,
}

impl SchemaBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        SchemaBuilder::default()
    }

    /// Add a nominal attribute with the given labels.
    pub fn nominal<I, S>(mut self, name: &str, labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.attributes.push(Attribute::new(
            name,
            AttrType::Nominal { labels: labels.into_iter().map(Into::into).collect() },
        ));
        self
    }

    /// Add a nominal attribute with synthetic labels `v0..v{n-1}` —
    /// convenient for generated benchmark schemas where only the domain
    /// *size* matters.
    pub fn nominal_sized(mut self, name: &str, domain_size: usize) -> Self {
        let labels = (0..domain_size).map(|i| format!("v{i}")).collect();
        self.attributes.push(Attribute::new(name, AttrType::Nominal { labels }));
        self
    }

    /// Add a real-valued numeric attribute over `[min, max]`.
    pub fn numeric(mut self, name: &str, min: f64, max: f64) -> Self {
        self.attributes.push(Attribute::new(name, AttrType::Numeric { min, max, integer: false }));
        self
    }

    /// Add an integer-valued numeric attribute over `[min, max]`.
    pub fn integer(mut self, name: &str, min: f64, max: f64) -> Self {
        self.attributes.push(Attribute::new(name, AttrType::Numeric { min, max, integer: true }));
        self
    }

    /// Add a date attribute over an inclusive range of civil dates.
    pub fn date_ymd(mut self, name: &str, min: (i64, u32, u32), max: (i64, u32, u32)) -> Self {
        self.attributes.push(Attribute::new(
            name,
            AttrType::Date {
                min: days_from_civil(min.0, min.1, min.2),
                max: days_from_civil(max.0, max.1, max.2),
            },
        ));
        self
    }

    /// Add a pre-built attribute.
    pub fn attribute(mut self, attribute: Attribute) -> Self {
        self.attributes.push(attribute);
        self
    }

    /// Finish, validating the schema.
    pub fn build(self) -> Result<Arc<Schema>, TableError> {
        Schema::shared(self.attributes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_all_kinds() {
        let s = SchemaBuilder::new()
            .nominal("a", ["x", "y"])
            .nominal_sized("b", 4)
            .numeric("n", 0.0, 1.0)
            .integer("i", -5.0, 5.0)
            .date_ymd("d", (2000, 1, 1), (2001, 1, 1))
            .build()
            .unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(s.attr(1).label(3), Some("v3"));
        assert!(matches!(s.attr(3).ty, AttrType::Numeric { integer: true, .. }));
        match s.attr(4).ty {
            AttrType::Date { min, max } => assert!(min < max),
            _ => panic!("expected date"),
        }
    }

    #[test]
    fn propagates_validation_errors() {
        assert!(SchemaBuilder::new().nominal("a", Vec::<String>::new()).build().is_err());
        assert!(SchemaBuilder::new().numeric("n", 2.0, 1.0).build().is_err());
    }
}
