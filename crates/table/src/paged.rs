//! Out-of-core tables: a paged on-disk columnar backend.
//!
//! A [`PagedTable`] is a directory holding a relation as fixed-row-count
//! column **pages** plus a small text manifest:
//!
//! ```text
//! <dir>/
//!   manifest.dqpm      dq-paged v1, schema fingerprint, page_rows, n_rows
//!   page-0.dqp         rows [0, page_rows)         (binary, columnar)
//!   page-1.dqp         rows [page_rows, 2·page_rows)
//!   ...
//! ```
//!
//! Pages encode each column as its typed cells with explicit NULL
//! flags; numbers are stored as IEEE-754 bit patterns
//! ([`f64::to_bits`]), so a round trip through disk is *exact* — the
//! paged detect path is pinned byte-identical (CSV and f64 bits) to
//! the in-memory one. The memory envelope of every consumer is
//! O(page): [`PagedWriter`] buffers at most one page plus one incoming
//! batch, [`PagedTable::batches`] decodes one page at a time, and
//! random access ([`PagedTable::get`]) goes through a small LRU page
//! cache of [`PagedTable::cache_pages`] decoded pages.
//!
//! This is the third canonical [`BatchSource`] implementation (after
//! [`crate::TableBatches`] and [`crate::CsvChunkReader`]) and the
//! substrate for audits over relations larger than RAM.
//!
//! # Crash safety
//!
//! The manifest is the commit record: a directory without one is an
//! uncommitted (or torn) spill, and [`PagedTable::open`] rejects it
//! with a typed error naming the file. [`PagedWriter::finish`] makes
//! that protocol atomic — each page is fsynced as it is sealed, the
//! manifest is written to `manifest.dqpm.tmp`, fsynced, and renamed
//! into place, and the directory entry itself is fsynced — so a crash
//! (or `kill -9`) at *any* point leaves either a fully committed
//! directory or one that `open` cleanly refuses. `open` also verifies
//! every page file the manifest promises actually exists, and each
//! page decode checks magic and row counts, so a torn page surfaces as
//! a located [`TableError`], never as wrong rows.

use crate::batch::BatchSource;
use crate::column::Column;
use crate::error::TableError;
use crate::schema::Schema;
use crate::table::Table;
use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

const MANIFEST: &str = "manifest.dqpm";
/// Staging name for the manifest during [`PagedWriter::finish`]; its
/// presence without a `manifest.dqpm` marks a spill torn mid-commit.
const MANIFEST_TMP: &str = "manifest.dqpm.tmp";
const MAGIC: &[u8; 4] = b"DQPG";
/// Default page size, rows — matches the generator's chunk unit.
pub const DEFAULT_PAGE_ROWS: usize = 4096;
/// Default LRU capacity, pages.
pub const DEFAULT_CACHE_PAGES: usize = 4;

fn located(path: &Path, what: impl std::fmt::Display) -> TableError {
    TableError::Io(format!("paged table `{}`: {what}", path.display()))
}

/// Streams batches into a page directory; finish with
/// [`PagedWriter::finish`] to write the manifest and reopen the
/// directory as a [`PagedTable`].
#[derive(Debug)]
pub struct PagedWriter {
    dir: PathBuf,
    schema: Arc<Schema>,
    page_rows: usize,
    pending: Table,
    n_rows: usize,
    n_pages: usize,
}

impl PagedWriter {
    /// Create (or truncate into) `dir` for a relation over `schema`
    /// with `page_rows` rows per page (clamped to at least 1).
    pub fn create(
        dir: impl Into<PathBuf>,
        schema: Arc<Schema>,
        page_rows: usize,
    ) -> Result<Self, TableError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| located(&dir, e))?;
        Ok(PagedWriter {
            pending: Table::new(schema.clone()),
            dir,
            schema,
            page_rows: page_rows.max(1),
            n_rows: 0,
            n_pages: 0,
        })
    }

    /// Reopen `dir` for appending after a crash, trusting exactly
    /// `committed_pages` pages — the count a checkpoint journal
    /// recorded at the last commit. Mid-stream, [`PagedWriter`] only
    /// ever writes *full* pages (the partial tail page is written by
    /// [`finish`](PagedWriter::finish) alone), so the committed prefix
    /// holds exactly `committed_pages * page_rows` rows.
    ///
    /// Every committed page must exist (each was fsynced before the
    /// journal committed it); the last one is decode-validated as a
    /// cheap tear check. Anything *beyond* the journal's watermark —
    /// orphan pages from the crashed incarnation, a stale manifest or
    /// staged temp — is pruned, so the resumed writer re-produces those
    /// bytes deterministically instead of trusting unjournaled state.
    pub fn resume(
        dir: impl Into<PathBuf>,
        schema: Arc<Schema>,
        page_rows: usize,
        committed_pages: usize,
    ) -> Result<Self, TableError> {
        let dir = dir.into();
        let page_rows = page_rows.max(1);
        for index in 0..committed_pages {
            let page = dir.join(format!("page-{index}.dqp"));
            if !page.is_file() {
                return Err(located(&page, "journaled page missing — cannot resume"));
            }
        }
        if committed_pages > 0 {
            let path = dir.join(format!("page-{}.dqp", committed_pages - 1));
            let file = std::fs::File::open(&path).map_err(|e| located(&path, e))?;
            let page = decode_page(&schema, &mut BufReader::new(file))
                .map_err(|e| located(&path, format!("{e} — journaled page torn")))?;
            if page.n_rows() != page_rows {
                return Err(located(
                    &path,
                    format!(
                        "journaled page has {} rows, expected a full page of {page_rows}",
                        page.n_rows()
                    ),
                ));
            }
        }
        // Prune unjournaled leftovers from the crashed incarnation.
        for name in [MANIFEST, MANIFEST_TMP] {
            let stale = dir.join(name);
            if stale.exists() {
                std::fs::remove_file(&stale).map_err(|e| located(&stale, e))?;
            }
        }
        let mut orphan = committed_pages;
        loop {
            let page = dir.join(format!("page-{orphan}.dqp"));
            if !page.exists() {
                break;
            }
            std::fs::remove_file(&page).map_err(|e| located(&page, e))?;
            orphan += 1;
        }
        Ok(PagedWriter {
            pending: Table::new(schema.clone()),
            dir,
            schema,
            page_rows,
            n_rows: committed_pages * page_rows,
            n_pages: committed_pages,
        })
    }

    /// Pages sealed on disk so far (each fsynced). The watermark a
    /// checkpoint journal records: on-disk rows are exactly
    /// `n_pages() * page_rows` at any point before
    /// [`finish`](PagedWriter::finish).
    pub fn n_pages(&self) -> usize {
        self.n_pages
    }

    /// Rows still buffered in memory, not yet part of any sealed page.
    pub fn pending_rows(&self) -> usize {
        self.pending.n_rows()
    }

    /// Append a batch (same schema as the writer's, by canonical
    /// fingerprint). Full pages spill to disk immediately; memory
    /// stays O(page + batch).
    pub fn append_batch(&mut self, batch: &Table) -> Result<(), TableError> {
        self.pending.append_rows(batch)?;
        self.n_rows += batch.n_rows();
        while self.pending.n_rows() >= self.page_rows {
            let page = self.pending.slice_rows(0, self.page_rows)?;
            let rest = self.pending.slice_rows(self.page_rows, self.pending.n_rows())?;
            self.write_page(&page)?;
            self.pending = rest;
        }
        Ok(())
    }

    /// Drain `source` to disk, then [`finish`](PagedWriter::finish) —
    /// the one-call spill of any [`BatchSource`].
    pub fn spill(mut self, mut source: impl BatchSource) -> Result<PagedTable, TableError> {
        while let Some(batch) = source.next_batch()? {
            self.append_batch(&batch)?;
        }
        self.finish()
    }

    /// Flush the final partial page, commit the manifest, and reopen
    /// the directory for reading.
    ///
    /// The commit is crash-safe: the manifest is staged to
    /// `manifest.dqpm.tmp`, fsynced, atomically renamed into place,
    /// and the directory entry is fsynced. A crash anywhere before the
    /// rename leaves no manifest (or only the staged temp file), and
    /// [`PagedTable::open`] rejects such a directory with a typed
    /// error instead of reading a partial relation.
    pub fn finish(mut self) -> Result<PagedTable, TableError> {
        if !self.pending.is_empty() {
            let last = std::mem::replace(&mut self.pending, Table::new(self.schema.clone()));
            self.write_page(&last)?;
        }
        let path = self.dir.join(MANIFEST);
        let tmp = self.dir.join(MANIFEST_TMP);
        let text = format!(
            "dq-paged v1\nfingerprint {:016x}\npage_rows {}\nn_rows {}\nn_pages {}\n",
            self.schema.fingerprint(),
            self.page_rows,
            self.n_rows,
            self.n_pages
        );
        let mut staged = std::fs::File::create(&tmp).map_err(|e| located(&tmp, e))?;
        staged.write_all(text.as_bytes()).map_err(|e| located(&tmp, e))?;
        staged.sync_all().map_err(|e| located(&tmp, e))?;
        drop(staged);
        std::fs::rename(&tmp, &path).map_err(|e| located(&path, e))?;
        sync_dir(&self.dir)?;
        PagedTable::open(self.dir, self.schema)
    }

    fn write_page(&mut self, page: &Table) -> Result<(), TableError> {
        let path = self.dir.join(format!("page-{}.dqp", self.n_pages));
        let file = std::fs::File::create(&path).map_err(|e| located(&path, e))?;
        let mut w = BufWriter::new(file);
        encode_page(page, &mut w).map_err(|e| located(&path, e))?;
        w.flush().map_err(|e| located(&path, e))?;
        // Durable before the manifest can commit it.
        w.get_ref().sync_all().map_err(|e| located(&path, e))?;
        self.n_pages += 1;
        Ok(())
    }
}

/// Fsync a directory so a just-renamed entry survives power loss.
/// Directory handles only support this on unix; elsewhere the rename
/// alone is the best available ordering.
fn sync_dir(dir: &Path) -> Result<(), TableError> {
    #[cfg(unix)]
    {
        let handle = std::fs::File::open(dir).map_err(|e| located(dir, e))?;
        handle.sync_all().map_err(|e| located(dir, e))?;
    }
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

fn encode_page<W: Write>(page: &Table, w: &mut W) -> std::io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(page.n_rows() as u64).to_le_bytes())?;
    for c in 0..page.n_cols() {
        match page.column(c) {
            Column::Nominal(cells) => {
                w.write_all(&[0u8])?;
                for cell in cells {
                    match cell {
                        None => w.write_all(&[0u8])?,
                        Some(code) => {
                            w.write_all(&[1u8])?;
                            w.write_all(&code.to_le_bytes())?;
                        }
                    }
                }
            }
            Column::Number(cells) => {
                w.write_all(&[1u8])?;
                for cell in cells {
                    match cell {
                        None => w.write_all(&[0u8])?,
                        Some(x) => {
                            w.write_all(&[1u8])?;
                            // Bit pattern, not text: exact round trip.
                            w.write_all(&x.to_bits().to_le_bytes())?;
                        }
                    }
                }
            }
            Column::Date(cells) => {
                w.write_all(&[2u8])?;
                for cell in cells {
                    match cell {
                        None => w.write_all(&[0u8])?,
                        Some(d) => {
                            w.write_all(&[1u8])?;
                            w.write_all(&d.to_le_bytes())?;
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

fn decode_page<R: Read>(schema: &Arc<Schema>, r: &mut R) -> Result<Table, String> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(|e| e.to_string())?;
    if &magic != MAGIC {
        return Err("bad page magic".into());
    }
    let mut len = [0u8; 8];
    r.read_exact(&mut len).map_err(|e| e.to_string())?;
    let n_rows = u64::from_le_bytes(len) as usize;
    let mut columns = Vec::with_capacity(schema.len());
    for attr in schema.attributes() {
        let mut kind = [0u8; 1];
        r.read_exact(&mut kind).map_err(|e| e.to_string())?;
        let expected = match Column::for_type(&attr.ty) {
            Column::Nominal(_) => 0u8,
            Column::Number(_) => 1,
            Column::Date(_) => 2,
        };
        if kind[0] != expected {
            return Err(format!(
                "column `{}` stored with kind tag {}, schema expects {expected}",
                attr.name, kind[0]
            ));
        }
        let mut flag = [0u8; 1];
        let column = match kind[0] {
            0 => {
                let mut cells = Vec::with_capacity(n_rows);
                let mut buf = [0u8; 4];
                for _ in 0..n_rows {
                    r.read_exact(&mut flag).map_err(|e| e.to_string())?;
                    cells.push(if flag[0] == 0 {
                        None
                    } else {
                        r.read_exact(&mut buf).map_err(|e| e.to_string())?;
                        Some(u32::from_le_bytes(buf))
                    });
                }
                Column::Nominal(cells)
            }
            1 => {
                let mut cells = Vec::with_capacity(n_rows);
                let mut buf = [0u8; 8];
                for _ in 0..n_rows {
                    r.read_exact(&mut flag).map_err(|e| e.to_string())?;
                    cells.push(if flag[0] == 0 {
                        None
                    } else {
                        r.read_exact(&mut buf).map_err(|e| e.to_string())?;
                        Some(f64::from_bits(u64::from_le_bytes(buf)))
                    });
                }
                Column::Number(cells)
            }
            _ => {
                let mut cells = Vec::with_capacity(n_rows);
                let mut buf = [0u8; 8];
                for _ in 0..n_rows {
                    r.read_exact(&mut flag).map_err(|e| e.to_string())?;
                    cells.push(if flag[0] == 0 {
                        None
                    } else {
                        r.read_exact(&mut buf).map_err(|e| e.to_string())?;
                        Some(i64::from_le_bytes(buf))
                    });
                }
                Column::Date(cells)
            }
        };
        columns.push(column);
    }
    Table::from_parts(schema.clone(), columns, n_rows).map_err(|e| e.to_string())
}

/// A relation resident on disk as column pages, read back page by
/// page. Random access goes through a small LRU cache of decoded
/// pages; sequential scans use [`PagedTable::batches`] (which bypasses
/// the cache so a full scan cannot evict a working set).
#[derive(Debug)]
pub struct PagedTable {
    dir: PathBuf,
    schema: Arc<Schema>,
    page_rows: usize,
    n_rows: usize,
    n_pages: usize,
    cache: Mutex<Lru>,
}

/// A tiny move-to-front LRU of decoded pages.
#[derive(Debug)]
struct Lru {
    capacity: usize,
    /// Front = most recently used.
    entries: VecDeque<(usize, Arc<Table>)>,
}

impl Lru {
    fn get(&mut self, page: usize) -> Option<Arc<Table>> {
        let pos = self.entries.iter().position(|(p, _)| *p == page)?;
        let entry = self.entries.remove(pos).expect("position came from iter");
        let hit = entry.1.clone();
        self.entries.push_front(entry);
        Some(hit)
    }

    fn put(&mut self, page: usize, table: Arc<Table>) {
        self.entries.push_front((page, table));
        while self.entries.len() > self.capacity {
            self.entries.pop_back();
        }
    }
}

impl PagedTable {
    /// Open a page directory written by [`PagedWriter`]; the manifest's
    /// schema fingerprint must match `schema`'s.
    ///
    /// A directory whose writer never reached the manifest commit —
    /// dropped mid-append, killed mid-spill, or crashed between
    /// staging and renaming the manifest — is rejected with a typed
    /// [`TableError`] naming the missing file (and the leftover
    /// `manifest.dqpm.tmp`, when one marks a torn commit). The page
    /// files the manifest promises are verified to exist up front.
    pub fn open(dir: impl Into<PathBuf>, schema: Arc<Schema>) -> Result<Self, TableError> {
        let dir = dir.into();
        let path = dir.join(MANIFEST);
        let text = std::fs::read_to_string(&path).map_err(|e| {
            let tmp = dir.join(MANIFEST_TMP);
            if tmp.exists() {
                located(
                    &path,
                    format!(
                        "{e} (staged `{}` present — the writer crashed mid-commit; \
                         the spill is incomplete)",
                        tmp.display()
                    ),
                )
            } else {
                located(&path, e)
            }
        })?;
        let mut lines = text.lines();
        if lines.next() != Some("dq-paged v1") {
            return Err(located(&path, "not a dq-paged v1 manifest"));
        }
        let mut field = |name: &str| -> Result<String, TableError> {
            let line = lines.next().unwrap_or("");
            line.strip_prefix(name)
                .and_then(|v| v.strip_prefix(' '))
                .map(str::to_string)
                .ok_or_else(|| located(&path, format!("manifest line `{line}` is not `{name} …`")))
        };
        let fingerprint = u64::from_str_radix(&field("fingerprint")?, 16)
            .map_err(|e| located(&path, format!("bad fingerprint: {e}")))?;
        let parse = |v: String| v.parse::<usize>().map_err(|e| located(&path, e));
        let page_rows = parse(field("page_rows")?)?;
        let n_rows = parse(field("n_rows")?)?;
        let n_pages = parse(field("n_pages")?)?;
        if fingerprint != schema.fingerprint() {
            return Err(TableError::SchemaFingerprint {
                expected: schema.fingerprint(),
                got: fingerprint,
            });
        }
        if page_rows == 0 || n_pages != n_rows.div_ceil(page_rows) {
            return Err(located(&path, "inconsistent page geometry"));
        }
        // Every page the manifest commits to must be present; a torn
        // directory is rejected here rather than mid-scan.
        for index in 0..n_pages {
            let page = dir.join(format!("page-{index}.dqp"));
            if !page.is_file() {
                return Err(located(&page, "page file missing from committed manifest"));
            }
        }
        Ok(PagedTable {
            dir,
            schema,
            page_rows,
            n_rows,
            n_pages,
            cache: Mutex::new(Lru { capacity: DEFAULT_CACHE_PAGES, entries: VecDeque::new() }),
        })
    }

    /// Resize the LRU page cache (clamped to at least 1 page).
    pub fn with_cache_pages(self, pages: usize) -> Self {
        self.cache.lock().expect("cache poisoned").capacity = pages.max(1);
        self
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Total rows across all pages.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Rows per page (the last page may be shorter).
    pub fn page_rows(&self) -> usize {
        self.page_rows
    }

    /// Number of pages on disk.
    pub fn n_pages(&self) -> usize {
        self.n_pages
    }

    /// Current LRU capacity, pages.
    pub fn cache_pages(&self) -> usize {
        self.cache.lock().expect("cache poisoned").capacity
    }

    /// Decode page `index` from disk, bypassing the cache.
    fn read_page(&self, index: usize) -> Result<Table, TableError> {
        let path = self.dir.join(format!("page-{index}.dqp"));
        let file = std::fs::File::open(&path).map_err(|e| located(&path, e))?;
        let page =
            decode_page(&self.schema, &mut BufReader::new(file)).map_err(|e| located(&path, e))?;
        let expected = if index + 1 == self.n_pages && self.n_rows % self.page_rows != 0 {
            self.n_rows % self.page_rows
        } else {
            self.page_rows
        };
        if page.n_rows() != expected {
            return Err(located(
                &path,
                format!("page has {} rows, expected {expected}", page.n_rows()),
            ));
        }
        Ok(page)
    }

    /// Page `index` as a shared in-memory table, via the LRU cache.
    pub fn page(&self, index: usize) -> Result<Arc<Table>, TableError> {
        if index >= self.n_pages {
            return Err(TableError::RowOutOfRange(index * self.page_rows));
        }
        if let Some(hit) = self.cache.lock().expect("cache poisoned").get(index) {
            return Ok(hit);
        }
        let page = Arc::new(self.read_page(index)?);
        self.cache.lock().expect("cache poisoned").put(index, page.clone());
        Ok(page)
    }

    /// The value at (`row`, `col`) — the typed random accessor, one
    /// page fault (at most) through the LRU.
    pub fn get(&self, row: usize, col: usize) -> Result<crate::Value, TableError> {
        if row >= self.n_rows {
            return Err(TableError::RowOutOfRange(row));
        }
        let page = self.page(row / self.page_rows)?;
        Ok(page.get(row % self.page_rows, col))
    }

    /// The typed cell at (`row`, `col`) without going through
    /// [`crate::Value`] — the paged sibling of
    /// [`Column::typed_cell`](crate::Column).
    pub fn typed_cell(&self, row: usize, col: usize) -> Result<crate::TypedCell, TableError> {
        if row >= self.n_rows {
            return Err(TableError::RowOutOfRange(row));
        }
        let page = self.page(row / self.page_rows)?;
        Ok(page.column(col).typed_cell(row % self.page_rows))
    }

    /// Scan the pages in row order as a [`BatchSource`] (one decoded
    /// page in memory at a time, LRU untouched).
    pub fn batches(&self) -> PagedBatches<'_> {
        self.batches_from(0)
    }

    /// Scan starting at page `first_page` — the seek a resumed audit
    /// uses to skip pages a previous incarnation already processed.
    /// The skipped rows count as emitted, so global row offsets match
    /// an uninterrupted scan.
    pub fn batches_from(&self, first_page: usize) -> PagedBatches<'_> {
        PagedBatches {
            table: self,
            next_page: first_page,
            rows_emitted: (first_page * self.page_rows).min(self.n_rows),
            done: false,
        }
    }
}

/// The sequential [`BatchSource`] view of a [`PagedTable`]: one page
/// per batch, in row order.
#[derive(Debug)]
pub struct PagedBatches<'a> {
    table: &'a PagedTable,
    next_page: usize,
    rows_emitted: usize,
    done: bool,
}

impl BatchSource for PagedBatches<'_> {
    fn schema(&self) -> &Arc<Schema> {
        &self.table.schema
    }

    fn next_batch(&mut self) -> Result<Option<Table>, TableError> {
        if self.done || self.next_page >= self.table.n_pages {
            self.done = true;
            return Ok(None);
        }
        match self.table.read_page(self.next_page) {
            Ok(page) => {
                self.next_page += 1;
                self.rows_emitted += page.n_rows();
                Ok(Some(page))
            }
            Err(e) => {
                self.done = true;
                Err(e)
            }
        }
    }

    fn rows_emitted(&self) -> usize {
        self.rows_emitted
    }

    fn row_count_hint(&self) -> Option<usize> {
        Some(self.table.n_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;
    use crate::value::Value;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dq-paged-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn fixture(rows: usize) -> Table {
        let schema = SchemaBuilder::new()
            .nominal("c", ["x", "y", "z"])
            .numeric("n", 0.0, 1000.0)
            .date_ymd("d", (2000, 1, 1), (2020, 1, 1))
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..rows {
            // Mix NULLs, an out-of-label code, and a bit-pattern-fussy
            // float so exactness is actually exercised.
            let c = match i % 4 {
                0 => Value::Null,
                3 => Value::Nominal(9),
                k => Value::Nominal(k as u32),
            };
            let n = if i % 5 == 0 { Value::Null } else { Value::Number(i as f64 / 7.0) };
            let d = if i % 3 == 0 { Value::Null } else { Value::Date(10957 + i as i64) };
            t.push_row_lenient(&[c, n, d]).unwrap();
        }
        t
    }

    #[test]
    fn round_trips_exactly_through_pages() {
        let t = fixture(23);
        for page_rows in [1, 7, 23, 100] {
            let d = dir(&format!("rt{page_rows}"));
            let paged = PagedWriter::create(&d, t.schema().clone(), page_rows)
                .unwrap()
                .spill(t.batches(5))
                .unwrap();
            assert_eq!(paged.n_rows(), 23);
            assert_eq!(paged.n_pages(), 23usize.div_ceil(page_rows));
            // Sequential scan concatenates to the exact relation.
            let mut src = paged.batches();
            let mut row = 0;
            while let Some(batch) = src.next_batch().unwrap() {
                for r in 0..batch.n_rows() {
                    assert_eq!(batch.row(r), t.row(row), "page_rows={page_rows}, row {row}");
                    row += 1;
                }
            }
            assert_eq!(row, 23);
            // Random access agrees cell-for-cell (f64 bits included).
            for r in [0, 7, 11, 22] {
                for c in 0..t.n_cols() {
                    assert_eq!(paged.get(r, c).unwrap(), t.get(r, c));
                    assert_eq!(paged.typed_cell(r, c).unwrap(), t.column(c).typed_cell(r));
                }
            }
            std::fs::remove_dir_all(&d).unwrap();
        }
    }

    #[test]
    fn lru_cache_bounds_resident_pages() {
        let t = fixture(40);
        let d = dir("lru");
        let paged = PagedWriter::create(&d, t.schema().clone(), 4)
            .unwrap()
            .spill(t.batches(9))
            .unwrap()
            .with_cache_pages(2);
        assert_eq!(paged.cache_pages(), 2);
        // Touch pages far apart, then re-touch: the cache never holds
        // more than 2 entries and re-reads still agree.
        for r in [0, 16, 32, 4, 0, 39] {
            assert_eq!(paged.get(r, 1).unwrap(), t.get(r, 1));
            assert!(paged.cache.lock().unwrap().entries.len() <= 2);
        }
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn open_validates_fingerprint_and_geometry() {
        let t = fixture(10);
        let d = dir("val");
        PagedWriter::create(&d, t.schema().clone(), 4).unwrap().spill(t.batches(3)).unwrap();
        // Wrong schema: typed fingerprint error.
        let other = SchemaBuilder::new().nominal("only", ["a"]).build().unwrap();
        assert!(matches!(PagedTable::open(&d, other), Err(TableError::SchemaFingerprint { .. })));
        // Torn manifest.
        std::fs::write(d.join(MANIFEST), "nonsense\n").unwrap();
        assert!(PagedTable::open(&d, t.schema().clone()).is_err());
        // Missing directory.
        std::fs::remove_dir_all(&d).unwrap();
        assert!(PagedTable::open(&d, t.schema().clone()).is_err());
    }

    #[test]
    fn writer_dropped_mid_append_leaves_a_rejected_directory() {
        let t = fixture(30);
        let d = dir("crash");
        {
            let mut w = PagedWriter::create(&d, t.schema().clone(), 4).unwrap();
            // Several pages reach disk, then the "process dies" before
            // finish(): the drop writes no manifest.
            w.append_batch(&t.slice_rows(0, 20).unwrap()).unwrap();
        }
        assert!(d.join("page-0.dqp").is_file(), "pages did spill");
        let err = PagedTable::open(&d, t.schema().clone()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains(MANIFEST), "must name the missing commit record: {msg}");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn torn_manifest_rename_is_rejected_with_a_crash_hint() {
        let t = fixture(10);
        let d = dir("torn");
        PagedWriter::create(&d, t.schema().clone(), 4).unwrap().spill(t.batches(3)).unwrap();
        // Simulate a crash between staging and renaming the manifest:
        // the commit record exists only under its temp name.
        std::fs::rename(d.join(MANIFEST), d.join(MANIFEST_TMP)).unwrap();
        let err = PagedTable::open(&d, t.schema().clone()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains(MANIFEST_TMP) && msg.contains("mid-commit"), "{msg}");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn open_rejects_a_manifest_promising_absent_pages() {
        let t = fixture(10);
        let d = dir("absent");
        PagedWriter::create(&d, t.schema().clone(), 4).unwrap().spill(t.batches(3)).unwrap();
        std::fs::remove_file(d.join("page-2.dqp")).unwrap();
        let err = PagedTable::open(&d, t.schema().clone()).unwrap_err();
        assert!(err.to_string().contains("page-2.dqp"), "{err}");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn truncated_page_file_is_a_located_error_not_wrong_rows() {
        let t = fixture(10);
        let d = dir("trunc");
        let paged =
            PagedWriter::create(&d, t.schema().clone(), 4).unwrap().spill(t.batches(3)).unwrap();
        // Tear the middle page to a prefix of itself.
        let page = d.join("page-1.dqp");
        let bytes = std::fs::read(&page).unwrap();
        std::fs::write(&page, &bytes[..bytes.len() / 2]).unwrap();
        let mut src = paged.batches();
        assert_eq!(src.next_batch().unwrap().unwrap().n_rows(), 4);
        let err = src.next_batch().unwrap_err();
        assert!(err.to_string().contains("page-1.dqp"), "{err}");
        assert!(matches!(src.next_batch(), Ok(None)), "fused after the tear");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn resume_reproduces_an_uninterrupted_spill_byte_for_byte() {
        let t = fixture(30);
        // Reference: uninterrupted spill.
        let ref_dir = dir("resume-ref");
        PagedWriter::create(&ref_dir, t.schema().clone(), 4).unwrap().spill(t.batches(7)).unwrap();

        // Crashed incarnation: 17 rows appended → 4 full pages sealed,
        // one row pending (lost with the process), plus an orphan torn
        // page file beyond the journaled watermark.
        let d = dir("resume");
        {
            let mut w = PagedWriter::create(&d, t.schema().clone(), 4).unwrap();
            w.append_batch(&t.slice_rows(0, 17).unwrap()).unwrap();
            assert_eq!(w.n_pages(), 4);
            assert_eq!(w.pending_rows(), 1);
        }
        std::fs::write(d.join("page-4.dqp"), b"torn orphan").unwrap();

        // Resume trusting the journal's 4 pages (= 16 rows); the tail
        // rows [16, 30) are re-appended as a fresh incarnation would.
        let mut w = PagedWriter::resume(&d, t.schema().clone(), 4, 4).unwrap();
        assert!(!d.join("page-4.dqp").exists(), "orphan pruned");
        w.append_batch(&t.slice_rows(16, 30).unwrap()).unwrap();
        w.finish().unwrap();

        for name in ["manifest.dqpm", "page-0.dqp", "page-3.dqp", "page-4.dqp", "page-7.dqp"] {
            assert_eq!(
                std::fs::read(ref_dir.join(name)).unwrap(),
                std::fs::read(d.join(name)).unwrap(),
                "{name} must be byte-identical to the uninterrupted run"
            );
        }
        std::fs::remove_dir_all(&ref_dir).unwrap();
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn resume_refuses_missing_or_torn_journaled_pages() {
        let t = fixture(20);
        let d = dir("resume-bad");
        {
            let mut w = PagedWriter::create(&d, t.schema().clone(), 4).unwrap();
            w.append_batch(&t.slice_rows(0, 16).unwrap()).unwrap();
        }
        // Journal promises more pages than exist.
        let err = PagedWriter::resume(&d, t.schema().clone(), 4, 5).unwrap_err();
        assert!(err.to_string().contains("page-4.dqp"), "{err}");
        // Tear the last journaled page.
        let page = d.join("page-3.dqp");
        let bytes = std::fs::read(&page).unwrap();
        std::fs::write(&page, &bytes[..bytes.len() / 2]).unwrap();
        let err = PagedWriter::resume(&d, t.schema().clone(), 4, 4).unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn batches_from_seeks_with_consistent_offsets() {
        let t = fixture(23);
        let d = dir("seek");
        let paged =
            PagedWriter::create(&d, t.schema().clone(), 4).unwrap().spill(t.batches(6)).unwrap();
        let mut src = paged.batches_from(3);
        assert_eq!(src.rows_emitted(), 12);
        let mut row = 12;
        while let Some(batch) = src.next_batch().unwrap() {
            for r in 0..batch.n_rows() {
                assert_eq!(batch.row(r), t.row(row), "row {row}");
                row += 1;
            }
        }
        assert_eq!(row, 23);
        assert_eq!(src.rows_emitted(), 23);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn missing_page_file_is_a_located_error() {
        let t = fixture(10);
        let d = dir("miss");
        let paged =
            PagedWriter::create(&d, t.schema().clone(), 4).unwrap().spill(t.batches(4)).unwrap();
        std::fs::remove_file(d.join("page-1.dqp")).unwrap();
        let mut src = paged.batches();
        assert!(src.next_batch().unwrap().is_some());
        let err = src.next_batch().unwrap_err();
        assert!(err.to_string().contains("page-1.dqp"), "{err}");
        // Fused after the error.
        assert!(matches!(src.next_batch(), Ok(None)));
        std::fs::remove_dir_all(&d).unwrap();
    }
}
