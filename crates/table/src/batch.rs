//! [`BatchSource`]: the one streaming-table abstraction of the
//! workspace.
//!
//! Every stage of the audit pipeline — generation, pollution, CSV
//! ingest, deviation detection — consumes or produces tables a bounded
//! batch at a time. Before this trait each stage had its own ad-hoc
//! shape (`Table::chunks` row slices, `CsvChunkReader`'s iterator,
//! bespoke `Iterator<Item = Result<Table, TableError>>` bounds); a
//! `BatchSource` is the single contract they all share:
//!
//! * batches arrive in row order and concatenate to exactly the
//!   source's logical relation;
//! * every batch is a [`Table`] over the *same* schema ([`BatchSource::schema`]);
//! * the item is fallible — a torn CSV stream or failed page read
//!   surfaces as a [`TableError`], after which the source is fused
//!   (keeps returning `Ok(None)`);
//! * [`BatchSource::rows_emitted`] is the global row offset of the
//!   *next* batch, so per-batch findings (audit rows, pollution-log
//!   rows) merge by plain offset addition.
//!
//! The three canonical implementations are [`TableBatches`] (an
//! in-memory table re-chunked), [`crate::CsvChunkReader`] (a CSV
//! stream), and the out-of-core readers in [`crate::paged`]; the
//! generator and polluter crates add streaming producers on top.
//!
//! ## Implementor guide
//!
//! A conforming implementation needs three things:
//!
//! 1. hold the schema in an `Arc<Schema>` and return batches built
//!    over that same `Arc` (consumers may assume `Arc` pointer
//!    equality or fingerprint equality across batches);
//! 2. fuse after the end or an error: once `next_batch` has returned
//!    `Ok(None)` or `Err(_)`, every later call must return `Ok(None)`;
//! 3. never return an empty batch — return `Ok(None)` instead, so
//!    `while let Some(batch) = src.next_batch()?` loops terminate.
//!
//! [`rows_emitted`](BatchSource::rows_emitted) must equal the sum of
//! `n_rows()` over all batches returned so far. `row_count_hint` is
//! optional and only used for progress/pre-allocation, never for
//! correctness.

use crate::error::TableError;
use crate::schema::Schema;
use crate::table::Table;
use std::sync::Arc;

/// A fallible, schema-checked stream of [`Table`] batches — the data
/// plane every pipeline stage speaks. See the [module
/// docs](self) for the contract and an implementor guide.
pub trait BatchSource {
    /// The schema every batch is built over.
    fn schema(&self) -> &Arc<Schema>;

    /// The next batch, `Ok(None)` at the end of the stream. After an
    /// `Err` or the first `Ok(None)` the source is fused: all later
    /// calls return `Ok(None)`. Batches are never empty.
    fn next_batch(&mut self) -> Result<Option<Table>, TableError>;

    /// Rows emitted so far — the global row offset of the next batch's
    /// first row. Starts at 0 and grows by `batch.n_rows()` per batch.
    fn rows_emitted(&self) -> usize;

    /// Total rows this source will emit, when known up front (an
    /// in-memory table, a paged directory). `None` for open streams.
    /// A hint only: consumers must not rely on it for correctness.
    fn row_count_hint(&self) -> Option<usize> {
        None
    }
}

/// A `&mut` to a source is itself a source, so adapters can borrow
/// without taking ownership.
impl<S: BatchSource + ?Sized> BatchSource for &mut S {
    fn schema(&self) -> &Arc<Schema> {
        (**self).schema()
    }

    fn next_batch(&mut self) -> Result<Option<Table>, TableError> {
        (**self).next_batch()
    }

    fn rows_emitted(&self) -> usize {
        (**self).rows_emitted()
    }

    fn row_count_hint(&self) -> Option<usize> {
        (**self).row_count_hint()
    }
}

impl<S: BatchSource + ?Sized> BatchSource for Box<S> {
    fn schema(&self) -> &Arc<Schema> {
        (**self).schema()
    }

    fn next_batch(&mut self) -> Result<Option<Table>, TableError> {
        (**self).next_batch()
    }

    fn rows_emitted(&self) -> usize {
        (**self).rows_emitted()
    }

    fn row_count_hint(&self) -> Option<usize> {
        (**self).row_count_hint()
    }
}

/// An in-memory [`Table`] viewed as a [`BatchSource`] of
/// `chunk_rows`-row batches (the last batch may be shorter). Produced
/// by [`Table::batches`]; batches are columnar range copies.
#[derive(Debug)]
pub struct TableBatches<'a> {
    table: &'a Table,
    chunk_rows: usize,
    next_row: usize,
}

impl<'a> TableBatches<'a> {
    pub(crate) fn new(table: &'a Table, chunk_rows: usize) -> Self {
        TableBatches { table, chunk_rows: chunk_rows.max(1), next_row: 0 }
    }
}

impl BatchSource for TableBatches<'_> {
    fn schema(&self) -> &Arc<Schema> {
        self.table.schema()
    }

    fn next_batch(&mut self) -> Result<Option<Table>, TableError> {
        if self.next_row >= self.table.n_rows() {
            return Ok(None);
        }
        let end = (self.next_row + self.chunk_rows).min(self.table.n_rows());
        let batch = self.table.slice_rows(self.next_row, end)?;
        self.next_row = end;
        Ok(Some(batch))
    }

    fn rows_emitted(&self) -> usize {
        self.next_row
    }

    fn row_count_hint(&self) -> Option<usize> {
        Some(self.table.n_rows())
    }
}

/// Pre-built batches (or planted errors) replayed as a
/// [`BatchSource`] — the adapter tests and in-process callers use to
/// feed hand-made batch sequences to stream consumers.
#[derive(Debug)]
pub struct ReplaySource {
    schema: Arc<Schema>,
    batches: std::vec::IntoIter<Result<Table, TableError>>,
    rows_emitted: usize,
    done: bool,
}

impl ReplaySource {
    /// Wrap an explicit batch sequence. The `schema` must be the one
    /// the `Ok` batches are built over.
    pub fn new(schema: Arc<Schema>, batches: Vec<Result<Table, TableError>>) -> Self {
        ReplaySource { schema, batches: batches.into_iter(), rows_emitted: 0, done: false }
    }
}

impl BatchSource for ReplaySource {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<Table>, TableError> {
        if self.done {
            return Ok(None);
        }
        match self.batches.next() {
            Some(Ok(batch)) => {
                self.rows_emitted += batch.n_rows();
                Ok(Some(batch))
            }
            Some(Err(e)) => {
                self.done = true;
                Err(e)
            }
            None => {
                self.done = true;
                Ok(None)
            }
        }
    }

    fn rows_emitted(&self) -> usize {
        self.rows_emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;
    use crate::value::Value;

    fn table(rows: usize) -> Table {
        let schema = SchemaBuilder::new()
            .nominal("c", ["x", "y"])
            .numeric("n", 0.0, 1000.0)
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..rows {
            t.push_row(&[Value::Nominal((i % 2) as u32), Value::Number(i as f64)]).unwrap();
        }
        t
    }

    /// Drain a source, checking the offset bookkeeping along the way.
    fn drain(mut src: impl BatchSource) -> (Vec<Table>, Option<TableError>) {
        let mut out = Vec::new();
        loop {
            assert_eq!(
                src.rows_emitted(),
                out.iter().map(Table::n_rows).sum::<usize>(),
                "rows_emitted must track the batches"
            );
            match src.next_batch() {
                Ok(Some(b)) => {
                    assert!(!b.is_empty(), "batches must never be empty");
                    out.push(b);
                }
                Ok(None) => {
                    // Fused: stays Ok(None).
                    assert!(matches!(src.next_batch(), Ok(None)));
                    return (out, None);
                }
                Err(e) => {
                    assert!(matches!(src.next_batch(), Ok(None)), "must fuse after an error");
                    return (out, Some(e));
                }
            }
        }
    }

    #[test]
    fn table_batches_cover_the_table_in_order() {
        let t = table(23);
        for chunk_rows in [1, 2, 7, 23, 100] {
            let (batches, err) = drain(t.batches(chunk_rows));
            assert!(err.is_none());
            let mut row = 0;
            for b in &batches {
                for r in 0..b.n_rows() {
                    assert_eq!(b.row(r), t.row(row), "chunk_rows={chunk_rows}, row {row}");
                    row += 1;
                }
            }
            assert_eq!(row, t.n_rows());
            for b in &batches[..batches.len() - 1] {
                assert_eq!(b.n_rows(), chunk_rows);
            }
        }
    }

    #[test]
    fn table_batches_edge_cases() {
        let empty = table(0);
        let (batches, err) = drain(empty.batches(4));
        assert!(batches.is_empty() && err.is_none());
        // chunk_rows = 0 clamps to 1.
        let t = table(3);
        let src = t.batches(0);
        assert_eq!(src.row_count_hint(), Some(3));
        let (batches, _) = drain(src);
        assert_eq!(batches.len(), 3);
    }

    #[test]
    fn replay_source_replays_and_fuses_on_error() {
        let t = table(5);
        let schema = t.schema().clone();
        let b1 = t.slice_rows(0, 3).unwrap();
        let b2 = t.slice_rows(3, 5).unwrap();
        let (batches, err) = drain(ReplaySource::new(
            schema.clone(),
            vec![Ok(b1.clone()), Err(TableError::Csv("torn".into())), Ok(b2)],
        ));
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].n_rows(), 3);
        assert!(matches!(err, Some(TableError::Csv(_))));
        // A clean replay covers everything.
        let (batches, err) =
            drain(ReplaySource::new(schema, vec![Ok(b1), Ok(t.slice_rows(3, 5).unwrap())]));
        assert_eq!(batches.iter().map(Table::n_rows).sum::<usize>(), 5);
        assert!(err.is_none());
    }

    #[test]
    fn mut_ref_and_box_are_sources_too() {
        fn pull(mut source: impl BatchSource) -> Table {
            source.next_batch().unwrap().unwrap()
        }
        let t = table(4);
        let mut src = t.batches(2);
        // `&mut src` goes through the blanket `&mut S` impl.
        let first = pull(&mut src);
        assert_eq!(first.n_rows(), 2);
        let mut boxed: Box<dyn BatchSource + '_> = Box::new(src);
        assert_eq!(boxed.rows_emitted(), 2);
        assert_eq!(boxed.next_batch().unwrap().unwrap().n_rows(), 2);
        assert!(boxed.next_batch().unwrap().is_none());
    }
}
