//! Fault-wrapping [`Read`]/[`Write`] adapters.
//!
//! [`FaultRead`] and [`FaultWrite`] sit between a consumer and any
//! byte stream and apply the **byte-unit** faults of a
//! [`FaultPlan`](crate::FaultPlan) at exact offsets:
//!
//! * `error byte N` — bytes before `N` flow normally, then the next
//!   op fails with an injected [`std::io::Error`] whose message embeds
//!   the fault's plan line;
//! * `truncate byte N` — a torn stream: reads hit end-of-file at `N`,
//!   writes silently drop everything from `N` on (a torn final write —
//!   the write *reports* success, exactly like a crash after the
//!   page-cache accepted the bytes). The consumer side is what the
//!   chaos suite probes: readers must detect the tear from framing
//!   (manifest row counts, CSV expected-row checks) rather than trust
//!   stream length;
//! * `short byte N cap C` — from offset `N` on, every op moves at most
//!   `C` bytes. Benign: `write_all`/`read_exact` loops still move every
//!   byte, only the op boundaries change;
//! * `latency byte N ms M` — one injected sleep when offset `N` is
//!   crossed.
//!
//! Ops are clipped so fault anchors are hit exactly: a read spanning an
//! `error byte 100` anchor first returns the bytes up to offset 100,
//! and only the *next* op fails.

use crate::plan::{Fault, FaultKind, FaultPlan, Unit};
use std::io::{self, Read, Write};
use std::time::Duration;

/// The shared byte-offset fault engine behind [`FaultRead`] and
/// [`FaultWrite`].
#[derive(Debug)]
struct ByteFaults {
    /// Byte-unit faults, sorted by anchor.
    faults: Vec<Fault>,
    /// Fired flags, parallel to `faults` (latency fires once;
    /// error/truncate latch).
    fired: Vec<bool>,
    offset: u64,
}

/// What the engine decides for the next op at the current offset.
enum Gate {
    /// Proceed, moving at most this many bytes.
    Allow(usize),
    /// The stream is torn here: reads see EOF, writes drop bytes.
    Torn,
    /// Fail with this injected error.
    Fail(io::Error),
}

impl ByteFaults {
    fn new(plan: &FaultPlan) -> Self {
        let faults = plan.in_unit(Unit::Byte);
        let fired = vec![false; faults.len()];
        ByteFaults { faults, fired, offset: 0 }
    }

    /// Run the schedule against an op of `want` bytes at the current
    /// offset: fire due latencies, stop at due error/truncate anchors,
    /// clip to the nearest upcoming anchor and the tightest active
    /// `short` cap.
    fn gate(&mut self, want: usize) -> Gate {
        let mut allow = want as u64;
        let mut cap = u64::MAX;
        for i in 0..self.faults.len() {
            let at = self.faults[i].at;
            match self.faults[i].kind {
                FaultKind::Latency(ms) => {
                    if at <= self.offset && !self.fired[i] {
                        self.fired[i] = true;
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                }
                FaultKind::Short(c) => {
                    if at <= self.offset {
                        cap = cap.min(c.max(1));
                    } else {
                        // Clip so the cap binds exactly from its anchor.
                        allow = allow.min(at - self.offset);
                    }
                }
                FaultKind::Error => {
                    if at <= self.offset {
                        return Gate::Fail(injected_io(&self.faults[i], self.offset));
                    }
                    allow = allow.min(at - self.offset);
                }
                FaultKind::Truncate => {
                    if at <= self.offset {
                        return Gate::Torn;
                    }
                    allow = allow.min(at - self.offset);
                }
            }
        }
        Gate::Allow(allow.min(cap).min(want as u64) as usize)
    }
}

/// The error an `error` fault injects: its message embeds the fault's
/// plan line and the exact offset, so a failing run names its cause.
fn injected_io(fault: &Fault, offset: u64) -> io::Error {
    io::Error::other(format!("injected fault: {fault} (offset {offset})"))
}

/// A [`Read`] wrapper applying a plan's byte-unit faults. See the
/// crate-level docs.
#[derive(Debug)]
pub struct FaultRead<R> {
    inner: R,
    faults: ByteFaults,
}

impl<R: Read> FaultRead<R> {
    /// Wrap `inner`, scheduling the byte-unit faults of `plan`.
    pub fn new(inner: R, plan: &FaultPlan) -> Self {
        FaultRead { inner, faults: ByteFaults::new(plan) }
    }

    /// Bytes delivered so far.
    pub fn offset(&self) -> u64 {
        self.faults.offset
    }

    /// Unwrap, discarding the schedule.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for FaultRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let allow = match self.faults.gate(buf.len()) {
            Gate::Allow(n) => n,
            Gate::Torn => return Ok(0),
            Gate::Fail(e) => return Err(e),
        };
        let n = self.inner.read(&mut buf[..allow])?;
        self.faults.offset += n as u64;
        Ok(n)
    }
}

/// A [`Write`] wrapper applying a plan's byte-unit faults. See the
/// crate-level docs — `truncate` here is the torn-final-write
/// simulator: bytes past the anchor are acknowledged but never reach
/// the underlying writer.
#[derive(Debug)]
pub struct FaultWrite<W> {
    inner: W,
    faults: ByteFaults,
}

impl<W: Write> FaultWrite<W> {
    /// Wrap `inner`, scheduling the byte-unit faults of `plan`.
    pub fn new(inner: W, plan: &FaultPlan) -> Self {
        FaultWrite { inner, faults: ByteFaults::new(plan) }
    }

    /// Bytes accepted so far (torn-dropped bytes included — the writer
    /// believed they landed).
    pub fn offset(&self) -> u64 {
        self.faults.offset
    }

    /// Unwrap, discarding the schedule.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultWrite<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let allow = match self.faults.gate(buf.len()) {
            Gate::Allow(n) => n,
            Gate::Torn => {
                // Torn write: acknowledge without persisting.
                self.faults.offset += buf.len() as u64;
                return Ok(buf.len());
            }
            Gate::Fail(e) => return Err(e),
        };
        let n = self.inner.write(&buf[..allow])?;
        self.faults.offset += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;

    fn plan(text: &str) -> FaultPlan {
        FaultPlan::parse(&format!("dq-fault v1\n{text}")).unwrap()
    }

    #[test]
    fn error_fault_delivers_prefix_then_fails_at_exact_offset() {
        let data = [7u8; 100];
        let mut r = FaultRead::new(&data[..], &plan("error byte 40"));
        let mut out = Vec::new();
        let err = r.read_to_end(&mut out).unwrap_err();
        assert_eq!(out, vec![7u8; 40], "bytes before the anchor must flow");
        let msg = err.to_string();
        assert!(msg.contains("injected fault: error byte 40"), "{msg}");
        assert!(msg.contains("offset 40"), "{msg}");
    }

    #[test]
    fn truncate_fault_is_early_eof_on_read_and_torn_on_write() {
        let data = [3u8; 64];
        let mut r = FaultRead::new(&data[..], &plan("truncate byte 10"));
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out.len(), 10);

        let mut w = FaultWrite::new(Vec::new(), &plan("truncate byte 10"));
        w.write_all(&[9u8; 64]).unwrap(); // reports success...
        w.flush().unwrap();
        assert_eq!(w.offset(), 64);
        assert_eq!(w.into_inner(), vec![9u8; 10], "...but only the prefix landed");
    }

    #[test]
    fn short_faults_are_byte_identical_with_smaller_ops() {
        let data: Vec<u8> = (0..=255u8).collect();
        let mut r = FaultRead::new(&data[..], &plan("short byte 17 cap 3"));
        let mut out = Vec::new();
        let mut buf = [0u8; 64];
        loop {
            let n = r.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            assert!(r.offset() <= 17 || n <= 3, "cap must bind past the anchor (got {n})");
            out.extend_from_slice(&buf[..n]);
        }
        assert_eq!(out, data, "short reads must not lose or reorder bytes");

        let mut w = FaultWrite::new(Vec::new(), &plan("short byte 0 cap 5"));
        w.write_all(&data).unwrap();
        assert_eq!(w.into_inner(), data);
    }

    #[test]
    fn empty_plan_is_a_transparent_wrapper() {
        let data: Vec<u8> = (0..=255u8).collect();
        let mut out = Vec::new();
        FaultRead::new(&data[..], &FaultPlan::none()).read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
        let mut w = FaultWrite::new(Vec::new(), &FaultPlan::none());
        w.write_all(&data).unwrap();
        assert_eq!(w.into_inner(), data);
    }

    #[test]
    fn write_error_fault_preserves_prefix() {
        let mut w = FaultWrite::new(Vec::new(), &plan("error byte 8"));
        let err = w.write_all(&[1u8; 32]).unwrap_err();
        assert!(err.to_string().contains("error byte 8"), "{err}");
        assert_eq!(w.into_inner(), vec![1u8; 8]);
    }
}
