//! Deterministic fault injection for the audit pipeline.
//!
//! The chaos premise: a monitoring-grade audit system is only trusted
//! when it degrades *predictably* — every torn write, stalled socket,
//! or mid-stream IO error must end in either output identical to the
//! fault-free run or a typed error naming the fault's location. Never
//! a panic, a hang, or a silently shorter relation. This crate is the
//! std-only instrument that proves it: seeded, replayable fault
//! schedules and the wrappers that apply them to any pipeline stage.
//!
//! # Pieces
//!
//! * [`FaultPlan`] — a schedule of [`Fault`]s, each anchored at a byte
//!   offset or emitted-batch index. Build one explicitly, or derive it
//!   from a seed with [`FaultPlan::seeded`]; the same seed always
//!   yields the same plan, so a failing chaos run replays exactly.
//! * [`FaultSource`] — wraps any [`BatchSource`](dq_table::BatchSource)
//!   and applies the plan's batch-unit faults: injected
//!   [`TableError`](dq_table::TableError)s, loud mid-stream
//!   truncations, batch re-chunking, latency.
//! * [`FaultRead`] / [`FaultWrite`] — wrap any `Read`/`Write` and
//!   apply the plan's byte-unit faults at exact offsets: injected IO
//!   errors, early EOF, torn final writes (acknowledged but dropped),
//!   short ops, latency.
//!
//! # The fault-plan text format
//!
//! Plans render to (and parse from) a line-oriented text form so the
//! schedule behind a failing run can be pasted straight into a
//! regression test:
//!
//! ```text
//! dq-fault v1
//! error byte 1024
//! truncate batch 3
//! short byte 64 cap 7
//! latency batch 2 ms 15
//! ```
//!
//! The header line is mandatory. Each following non-blank line is one
//! fault: a kind (`error`, `truncate`, `short`, `latency`), a unit
//! (`byte` or `batch`), the anchor offset/index, and the kind's
//! parameter (`cap N` for `short`, `ms N` for `latency`). Blank lines
//! and `#` comments are ignored. [`FaultPlan::render`] and
//! [`FaultPlan::parse`] round-trip this form, and every injected error
//! message embeds its fault's plan line.
//!
//! # Fault taxonomy
//!
//! `error` and `truncate` are **disruptive**: the run must end in a
//! typed error (or, for a torn write, the *reader* must detect the
//! tear from framing). `short` and `latency` are **benign**: the run
//! must produce byte-identical output, they only perturb op sizes and
//! timing. [`FaultPlan::is_benign`] classifies a whole plan; the chaos
//! soak in `tests/chaos_soak.rs` asserts exactly this dichotomy across
//! hundreds of seeded schedules.
//!
//! ```
//! use dq_fault::{FaultPlan, FaultRead};
//! use std::io::Read;
//!
//! let plan = FaultPlan::parse("dq-fault v1\nerror byte 4\n").unwrap();
//! let mut out = Vec::new();
//! let err = FaultRead::new(&b"hello world"[..], &plan).read_to_end(&mut out).unwrap_err();
//! assert_eq!(out, b"hell");
//! assert!(err.to_string().contains("error byte 4"));
//! ```

mod io;
mod plan;
mod source;

pub use io::{FaultRead, FaultWrite};
pub use plan::{Fault, FaultKind, FaultPlan, FaultProfile, Unit};
pub use source::FaultSource;
