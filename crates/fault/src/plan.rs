//! [`FaultPlan`]: a seeded, replayable schedule of faults.
//!
//! A plan is an ordered list of [`Fault`]s, each anchored at a stream
//! position in one of two units — **bytes** (for the [`Read`]/[`Write`]
//! adapters in `io`) or **batches** (for the
//! [`FaultSource`](crate::FaultSource) pipeline wrapper). Plans render
//! as plain text and parse back losslessly, so the schedule that broke
//! a chaos run pastes straight into a regression test:
//!
//! ```text
//! dq-fault v1
//! error batch 3
//! truncate byte 1024
//! short byte 64 cap 7
//! latency batch 2 ms 15
//! ```
//!
//! One line per fault; see [`FaultKind`] for the grammar of each. The
//! chaos harnesses build plans two ways: literally (a regression test
//! pinning a known-bad schedule via [`FaultPlan::parse`]) or randomly
//! but reproducibly from a seed ([`FaultPlan::seeded`] — same seed,
//! same schedule, forever).

use std::fmt;

/// The stream position unit a fault is anchored in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Byte offset — consumed by [`FaultRead`](crate::FaultRead) and
    /// [`FaultWrite`](crate::FaultWrite).
    Byte,
    /// Batch index — consumed by [`crate::FaultSource`].
    Batch,
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Unit::Byte => "byte",
            Unit::Batch => "batch",
        })
    }
}

/// What goes wrong at the fault's anchor position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// A hard failure: the wrapped reader/writer/source returns an
    /// injected error once the anchor is reached. Line form: `error`.
    Error,
    /// A torn stream: reads hit early end-of-file, writes silently
    /// drop everything past the anchor (a torn final write), and a
    /// [`FaultSource`](crate::FaultSource) reports a *located* error
    /// after emitting the rows before the anchor — per the
    /// `BatchSource` contract a torn backing store must surface as an
    /// `Err`, never as a silently shorter relation. Line form:
    /// `truncate`.
    Truncate,
    /// A degraded stream: from the anchor on, every read/write moves at
    /// most `cap` bytes (a short read/write), and a batch source
    /// re-chunks batches to at most `cap` rows. Benign by construction:
    /// the bytes/rows that flow are identical, only the op boundaries
    /// change. Line form: `short … cap N`.
    Short(u64),
    /// Injected latency: sleep `ms` milliseconds when the anchor is
    /// crossed, then proceed normally. Benign. Line form:
    /// `latency … ms N`.
    Latency(u64),
}

/// One scheduled fault: a kind, anchored at position `at` of `unit`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// What goes wrong.
    pub kind: FaultKind,
    /// The position unit.
    pub unit: Unit,
    /// The anchor position (byte offset or batch index).
    pub at: u64,
}

impl Fault {
    /// `true` when this fault changes the stream's *content* (error or
    /// truncation) rather than just its timing or op boundaries. A run
    /// whose plan has no disruptive fault inside the stream must end
    /// byte-identical to the fault-free run.
    pub fn is_disruptive(&self) -> bool {
        matches!(self.kind, FaultKind::Error | FaultKind::Truncate)
    }
}

/// Renders exactly the plan-line form, e.g. `short byte 64 cap 7` —
/// injected error messages embed this rendering, so a failing run
/// names the fault that caused it.
impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            FaultKind::Error => write!(f, "error {} {}", self.unit, self.at),
            FaultKind::Truncate => write!(f, "truncate {} {}", self.unit, self.at),
            FaultKind::Short(cap) => write!(f, "short {} {} cap {cap}", self.unit, self.at),
            FaultKind::Latency(ms) => write!(f, "latency {} {} ms {ms}", self.unit, self.at),
        }
    }
}

/// A replayable fault schedule. See the crate docs for the
/// text format and construction routes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The scheduled faults, in schedule order.
    pub faults: Vec<Fault>,
}

/// Tuning for [`FaultPlan::seeded`]: where faults may land and how
/// hard they may bite.
#[derive(Debug, Clone)]
pub struct FaultProfile {
    /// Largest byte anchor drawn (exclusive). 0 disables byte faults.
    pub max_byte: u64,
    /// Largest batch anchor drawn (exclusive). 0 disables batch faults.
    pub max_batch: u64,
    /// Largest injected latency, milliseconds (inclusive).
    pub max_latency_ms: u64,
    /// Largest `short` cap drawn (inclusive, minimum 1).
    pub max_short_cap: u64,
    /// Most faults per plan (at least 1 is always drawn).
    pub max_faults: usize,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            max_byte: 1 << 16,
            max_batch: 16,
            max_latency_ms: 5,
            max_short_cap: 64,
            max_faults: 3,
        }
    }
}

/// SplitMix64 — a tiny self-contained PRNG so plans replay identically
/// regardless of any other RNG in the process.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; 0 when the bound is 0.
    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next() % bound
        }
    }
}

impl FaultPlan {
    /// The empty plan: a pure pass-through. The zero-fault identity —
    /// wrapping any stage with an empty plan changes nothing, byte for
    /// byte — is pinned by `tests/stream_equivalence.rs`.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan holding exactly the given faults.
    pub fn new(faults: Vec<Fault>) -> Self {
        FaultPlan { faults }
    }

    /// Draw a random schedule from `seed`. Deterministic: the same
    /// seed and profile produce the same plan on every platform, so a
    /// failing chaos seed is a complete reproduction recipe.
    pub fn seeded(seed: u64, profile: &FaultProfile) -> Self {
        let mut rng = SplitMix64(seed);
        let n = 1 + rng.below(profile.max_faults.max(1) as u64) as usize;
        let mut faults = Vec::with_capacity(n);
        for _ in 0..n {
            let unit = match (profile.max_byte, profile.max_batch) {
                (0, 0) => return FaultPlan::none(),
                (0, _) => Unit::Batch,
                (_, 0) => Unit::Byte,
                _ => {
                    if rng.next() % 2 == 0 {
                        Unit::Byte
                    } else {
                        Unit::Batch
                    }
                }
            };
            let at = match unit {
                Unit::Byte => rng.below(profile.max_byte),
                Unit::Batch => rng.below(profile.max_batch),
            };
            let kind = match rng.next() % 4 {
                0 => FaultKind::Error,
                1 => FaultKind::Truncate,
                2 => FaultKind::Short(1 + rng.below(profile.max_short_cap.max(1))),
                _ => FaultKind::Latency(rng.below(profile.max_latency_ms.saturating_add(1))),
            };
            faults.push(Fault { kind, unit, at });
        }
        FaultPlan { faults }
    }

    /// The faults anchored in `unit`, sorted by position (the order
    /// the wrappers will encounter them).
    pub fn in_unit(&self, unit: Unit) -> Vec<Fault> {
        let mut faults: Vec<Fault> =
            self.faults.iter().filter(|f| f.unit == unit).cloned().collect();
        faults.sort_by_key(|f| f.at);
        faults
    }

    /// `true` when the plan holds a disruptive (error/truncate) fault
    /// in `unit` anchored strictly below `len` — i.e. one that a
    /// stream of that length is guaranteed to trip over.
    pub fn disrupts_within(&self, unit: Unit, len: u64) -> bool {
        self.faults.iter().any(|f| f.unit == unit && f.is_disruptive() && f.at < len)
    }

    /// `true` when no fault in the plan can alter stream content —
    /// every fault is benign (`short`/`latency`), in any unit at any
    /// position.
    pub fn is_benign(&self) -> bool {
        self.faults.iter().all(|f| !f.is_disruptive())
    }

    /// Render the plan in its text form (header line + one line per
    /// fault), suitable for [`FaultPlan::parse`].
    pub fn render(&self) -> String {
        let mut out = String::from("dq-fault v1\n");
        for f in &self.faults {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out
    }

    /// Parse the text form back into a plan. Round trip with
    /// [`FaultPlan::render`] is exact.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some("dq-fault v1") => {}
            other => return Err(format!("expected `dq-fault v1` header, got {other:?}")),
        }
        let mut faults = Vec::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            faults.push(parse_fault_line(line)?);
        }
        Ok(FaultPlan { faults })
    }
}

fn parse_fault_line(line: &str) -> Result<Fault, String> {
    let bad = |what: &str| format!("fault line `{line}`: {what}");
    let mut words = line.split_whitespace();
    let kind_word = words.next().ok_or_else(|| bad("empty"))?;
    let unit = match words.next() {
        Some("byte") => Unit::Byte,
        Some("batch") => Unit::Batch,
        other => return Err(bad(&format!("expected unit `byte` or `batch`, got {other:?}"))),
    };
    let at: u64 = words
        .next()
        .and_then(|w| w.parse().ok())
        .ok_or_else(|| bad("expected a numeric position"))?;
    let mut keyed_arg = |key: &str| -> Result<u64, String> {
        match (words.next(), words.next()) {
            (Some(k), Some(v)) if k == key => {
                v.parse().map_err(|_| bad(&format!("`{key}` wants a number, got `{v}`")))
            }
            _ => Err(bad(&format!("expected `{key} N`"))),
        }
    };
    let kind = match kind_word {
        "error" => FaultKind::Error,
        "truncate" => FaultKind::Truncate,
        "short" => FaultKind::Short(keyed_arg("cap")?.max(1)),
        "latency" => FaultKind::Latency(keyed_arg("ms")?),
        other => return Err(bad(&format!("unknown fault kind `{other}`"))),
    };
    if words.next().is_some() {
        return Err(bad("trailing tokens"));
    }
    Ok(Fault { kind, unit, at })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let plan = FaultPlan::new(vec![
            Fault { kind: FaultKind::Error, unit: Unit::Batch, at: 3 },
            Fault { kind: FaultKind::Truncate, unit: Unit::Byte, at: 1024 },
            Fault { kind: FaultKind::Short(7), unit: Unit::Byte, at: 64 },
            Fault { kind: FaultKind::Latency(15), unit: Unit::Batch, at: 2 },
        ]);
        let text = plan.render();
        assert!(text.starts_with("dq-fault v1\n"), "{text}");
        assert!(text.contains("short byte 64 cap 7"), "{text}");
        let parsed = FaultPlan::parse(&text).unwrap();
        assert_eq!(parsed, plan);
    }

    #[test]
    fn parse_rejects_garbage_with_located_messages() {
        assert!(FaultPlan::parse("nonsense").unwrap_err().contains("header"));
        for bad in [
            "dq-fault v1\nexplode byte 3",
            "dq-fault v1\nerror page 3",
            "dq-fault v1\nerror byte many",
            "dq-fault v1\nshort byte 3",
            "dq-fault v1\nshort byte 3 cap x",
            "dq-fault v1\nerror byte 3 extra",
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(err.contains("fault line"), "{bad}: {err}");
        }
        // Blank lines and comments are tolerated.
        let plan = FaultPlan::parse("dq-fault v1\n\n# a note\nerror byte 9\n").unwrap();
        assert_eq!(plan.faults.len(), 1);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_profile() {
        let profile = FaultProfile::default();
        for seed in 0..200u64 {
            let a = FaultPlan::seeded(seed, &profile);
            let b = FaultPlan::seeded(seed, &profile);
            assert_eq!(a, b, "seed {seed} must replay identically");
            assert!(!a.faults.is_empty() && a.faults.len() <= profile.max_faults);
            for f in &a.faults {
                match f.unit {
                    Unit::Byte => assert!(f.at < profile.max_byte),
                    Unit::Batch => assert!(f.at < profile.max_batch),
                }
                match f.kind {
                    FaultKind::Short(cap) => {
                        assert!(cap >= 1 && cap <= profile.max_short_cap);
                    }
                    FaultKind::Latency(ms) => assert!(ms <= profile.max_latency_ms),
                    _ => {}
                }
            }
            // Round trip holds for every generated plan.
            assert_eq!(FaultPlan::parse(&a.render()).unwrap(), a);
        }
        // Different seeds disagree somewhere (sanity, not cryptography).
        let plans: Vec<_> = (0..50).map(|s| FaultPlan::seeded(s, &profile).render()).collect();
        let distinct: std::collections::HashSet<_> = plans.iter().collect();
        assert!(distinct.len() > 40, "seeds should spread: {} distinct", distinct.len());
    }

    #[test]
    fn classification_helpers() {
        let plan =
            FaultPlan::parse("dq-fault v1\nshort batch 0 cap 3\nlatency byte 5 ms 1\n").unwrap();
        assert!(plan.is_benign());
        assert!(!plan.disrupts_within(Unit::Batch, 100));
        let plan = FaultPlan::parse("dq-fault v1\nerror batch 7\n").unwrap();
        assert!(!plan.is_benign());
        assert!(plan.disrupts_within(Unit::Batch, 8));
        assert!(!plan.disrupts_within(Unit::Batch, 7), "fault at 7 needs 8 batches to fire");
        assert!(!plan.disrupts_within(Unit::Byte, u64::MAX));
        assert!(FaultPlan::none().is_benign());
    }
}
