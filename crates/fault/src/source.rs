//! [`FaultSource`]: fault injection for any
//! [`BatchSource`](dq_table::BatchSource) pipeline stage.
//!
//! Wraps a source and applies the **batch-unit** faults of a
//! [`FaultPlan`](crate::FaultPlan), anchored on *emitted* batch
//! indices (what the downstream stage observes):
//!
//! * `error batch N` — the call that would emit batch `N` returns an
//!   injected [`TableError::Io`] naming the fault and the global row
//!   offset, then the source fuses;
//! * `truncate batch N` — a torn backing store: batch `N` is cut to
//!   its first half (when non-empty), and the *next* call reports the
//!   injected, located error. Per the `BatchSource` contract a tear is
//!   always loud — `Err`, never a silently shorter relation — which is
//!   exactly what lets `detect_stream_partial` flush the rows before
//!   the tear and still mark the scan partial;
//! * `short batch N cap C` — from batch `N` on, emitted batches carry
//!   at most `C` rows (the inner batch is re-chunked; the remainder is
//!   emitted next). Benign: the concatenated row stream is identical,
//!   only the batch boundaries move — chaos for every consumer that
//!   does offset arithmetic;
//! * `latency batch N ms M` — one injected sleep before batch `N`.
//!
//! With an empty plan the wrapper is a pure pass-through; that
//! zero-fault identity is pinned byte-for-byte in
//! `tests/stream_equivalence.rs`.

use crate::plan::{Fault, FaultKind, FaultPlan, Unit};
use dq_table::{BatchSource, Schema, Table, TableError};
use std::sync::Arc;
use std::time::Duration;

/// A [`BatchSource`] wrapper injecting a plan's batch-unit faults.
/// See the crate docs for per-fault semantics.
#[derive(Debug)]
pub struct FaultSource<S> {
    inner: S,
    /// Batch-unit faults, sorted by anchor.
    faults: Vec<Fault>,
    fired: Vec<bool>,
    /// Index of the next batch to emit (downstream view).
    next_index: u64,
    rows_emitted: usize,
    /// Remainder of an inner batch being re-chunked by a `short` cap.
    pending: Option<Table>,
    /// Error to deliver on the next call (a tear's second half).
    deferred: Option<TableError>,
    done: bool,
}

impl<S: BatchSource> FaultSource<S> {
    /// Wrap `inner`, scheduling the batch-unit faults of `plan`.
    pub fn new(inner: S, plan: &FaultPlan) -> Self {
        let faults = plan.in_unit(Unit::Batch);
        let fired = vec![false; faults.len()];
        FaultSource {
            inner,
            faults,
            fired,
            next_index: 0,
            rows_emitted: 0,
            pending: None,
            deferred: None,
            done: false,
        }
    }

    /// Unwrap, discarding the schedule.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// The injected-error payload: embeds the fault's plan line plus
    /// the batch index and global row offset where it fired.
    fn injected(&self, fault: &Fault, note: &str) -> TableError {
        TableError::Io(format!(
            "injected fault: {fault}{note} (batch {}, row offset {})",
            self.next_index, self.rows_emitted
        ))
    }

    /// Pull the next rows to emit: the re-chunk remainder first, then
    /// the inner source.
    fn pull(&mut self) -> Result<Option<Table>, TableError> {
        if let Some(rest) = self.pending.take() {
            return Ok(Some(rest));
        }
        self.inner.next_batch()
    }
}

impl<S: BatchSource> BatchSource for FaultSource<S> {
    fn schema(&self) -> &Arc<Schema> {
        self.inner.schema()
    }

    fn next_batch(&mut self) -> Result<Option<Table>, TableError> {
        if self.done {
            return Ok(None);
        }
        if let Some(err) = self.deferred.take() {
            self.done = true;
            return Err(err);
        }
        // Fire the faults due at this emitted-batch index.
        let mut cap: Option<usize> = None;
        for i in 0..self.faults.len() {
            let fault = self.faults[i].clone();
            if fault.at > self.next_index {
                continue;
            }
            match fault.kind {
                FaultKind::Latency(ms) => {
                    if !self.fired[i] {
                        self.fired[i] = true;
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                }
                FaultKind::Short(c) => {
                    let c = c.max(1) as usize;
                    cap = Some(cap.map_or(c, |prev| prev.min(c)));
                }
                FaultKind::Error => {
                    self.done = true;
                    return Err(self.injected(&fault, ""));
                }
                FaultKind::Truncate => {
                    if self.fired[i] {
                        continue;
                    }
                    self.fired[i] = true;
                    // Tear the batch: emit the first half (when any),
                    // then report the located error on the next call.
                    let batch = match self.pull() {
                        Ok(Some(b)) => b,
                        Ok(None) => {
                            self.done = true;
                            return Err(self.injected(&fault, " at end of stream"));
                        }
                        Err(e) => {
                            self.done = true;
                            return Err(e);
                        }
                    };
                    let keep = batch.n_rows() / 2;
                    let err = self.injected(&fault, " — stream torn");
                    if keep == 0 {
                        self.done = true;
                        return Err(err);
                    }
                    let head = batch.slice_rows(0, keep)?;
                    self.deferred = Some(err);
                    self.rows_emitted += head.n_rows();
                    self.next_index += 1;
                    return Ok(Some(head));
                }
            }
        }
        let batch = match self.pull() {
            Ok(Some(b)) => b,
            Ok(None) => {
                self.done = true;
                return Ok(None);
            }
            Err(e) => {
                self.done = true;
                return Err(e);
            }
        };
        let batch = match cap {
            Some(cap) if batch.n_rows() > cap => {
                let head = batch.slice_rows(0, cap)?;
                self.pending = Some(batch.slice_rows(cap, batch.n_rows())?);
                head
            }
            _ => batch,
        };
        self.rows_emitted += batch.n_rows();
        self.next_index += 1;
        Ok(Some(batch))
    }

    fn rows_emitted(&self) -> usize {
        self.rows_emitted
    }

    fn row_count_hint(&self) -> Option<usize> {
        // A hint only (never correctness): pass it through even though
        // a disruptive plan may cut the stream short.
        self.inner.row_count_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_table::{SchemaBuilder, Value};

    fn table(rows: usize) -> Table {
        let schema = SchemaBuilder::new()
            .nominal("c", ["x", "y"])
            .numeric("n", 0.0, 1000.0)
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..rows {
            t.push_row(&[Value::Nominal((i % 2) as u32), Value::Number(i as f64)]).unwrap();
        }
        t
    }

    fn plan(text: &str) -> FaultPlan {
        FaultPlan::parse(&format!("dq-fault v1\n{text}")).unwrap()
    }

    /// Drain, asserting the BatchSource contract along the way.
    fn drain<S: BatchSource>(mut src: S) -> (Vec<Table>, Option<TableError>) {
        let mut out = Vec::new();
        loop {
            assert_eq!(src.rows_emitted(), out.iter().map(Table::n_rows).sum::<usize>());
            match src.next_batch() {
                Ok(Some(b)) => {
                    assert!(!b.is_empty(), "batches must never be empty");
                    out.push(b);
                }
                Ok(None) => {
                    assert!(matches!(src.next_batch(), Ok(None)), "must fuse");
                    return (out, None);
                }
                Err(e) => {
                    assert!(matches!(src.next_batch(), Ok(None)), "must fuse after error");
                    return (out, Some(e));
                }
            }
        }
    }

    fn rows(batches: &[Table]) -> usize {
        batches.iter().map(Table::n_rows).sum()
    }

    #[test]
    fn empty_plan_is_identity() {
        let t = table(23);
        let (batches, err) = drain(FaultSource::new(t.batches(7), &FaultPlan::none()));
        assert!(err.is_none());
        assert_eq!(rows(&batches), 23);
        let mut row = 0;
        for b in &batches {
            for r in 0..b.n_rows() {
                assert_eq!(b.row(r), t.row(row));
                row += 1;
            }
        }
    }

    #[test]
    fn error_fault_fires_at_emitted_index_with_location() {
        let t = table(40);
        let (batches, err) = drain(FaultSource::new(t.batches(10), &plan("error batch 2")));
        assert_eq!(batches.len(), 2, "two batches precede the fault");
        let msg = err.expect("must error").to_string();
        assert!(msg.contains("injected fault: error batch 2"), "{msg}");
        assert!(msg.contains("row offset 20"), "{msg}");
    }

    #[test]
    fn truncate_emits_half_batch_then_located_error() {
        let t = table(40);
        let (batches, err) = drain(FaultSource::new(t.batches(10), &plan("truncate batch 1")));
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[1].n_rows(), 5, "the torn batch is cut to its first half");
        let msg = err.expect("a tear must be loud").to_string();
        assert!(msg.contains("truncate batch 1") && msg.contains("torn"), "{msg}");
        // The rows that did flow are the true prefix.
        let mut row = 0;
        for b in &batches {
            for r in 0..b.n_rows() {
                assert_eq!(b.row(r), t.row(row));
                row += 1;
            }
        }
    }

    #[test]
    fn short_fault_rechunks_but_preserves_every_row() {
        let t = table(40);
        let (batches, err) = drain(FaultSource::new(t.batches(10), &plan("short batch 1 cap 3")));
        assert!(err.is_none());
        assert_eq!(rows(&batches), 40, "short is benign: all rows flow");
        assert_eq!(batches[0].n_rows(), 10, "before the anchor: untouched");
        for b in &batches[1..] {
            assert!(b.n_rows() <= 3, "past the anchor: capped at 3, got {}", b.n_rows());
        }
        let mut row = 0;
        for b in &batches {
            for r in 0..b.n_rows() {
                assert_eq!(b.row(r), t.row(row));
                row += 1;
            }
        }
    }

    #[test]
    fn truncate_past_the_end_reports_end_of_stream() {
        let t = table(5);
        let (batches, err) = drain(FaultSource::new(t.batches(10), &plan("truncate batch 9")));
        assert_eq!(rows(&batches), 5, "the whole stream precedes the anchor");
        // Anchor never reached: the stream ended first, cleanly.
        assert!(err.is_none());

        // Anchor exactly at the end-of-stream call: loud, located.
        let (batches, err) = drain(FaultSource::new(t.batches(5), &plan("truncate batch 1")));
        assert_eq!(rows(&batches), 5);
        let msg = err.expect("anchor on the final call is a tear").to_string();
        assert!(msg.contains("at end of stream"), "{msg}");
    }

    #[test]
    fn latency_is_benign_and_fires_once() {
        let t = table(12);
        let t0 = std::time::Instant::now();
        let (batches, err) = drain(FaultSource::new(t.batches(4), &plan("latency batch 1 ms 20")));
        assert!(err.is_none());
        assert_eq!(rows(&batches), 12);
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }
}
