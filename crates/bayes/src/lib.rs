//! # dq-bayes — Bayesian networks over nominal attributes
//!
//! "First experiments showed that an independent sampling of the
//! initial values does not lead to a satisfactory model of the QUIS
//! database. Hence, we developed a method for the intuitive
//! specification of multivariate start distributions based on the
//! graphical representation of stochastic dependencies among attributes
//! in Bayesian networks." (sec. 4.1.4 of the paper)
//!
//! This crate provides that substrate: a discrete [`BayesianNetwork`]
//! over nominal attributes with
//!
//! * ancestral **sampling** (what the test data generator draws start
//!   values from),
//! * **fitting** (maximum likelihood with Laplace smoothing) from an
//!   existing table — handy for mimicking a real database's joint
//!   distribution,
//! * **random generation** of networks for benchmark configurations,
//! * joint **log-likelihood** scoring.

pub mod cpt;
pub mod graph;
pub mod network;

pub use cpt::Cpt;
pub use graph::Dag;
pub use network::{BayesError, BayesNetBuilder, BayesianNetwork};
