//! Conditional probability tables.

/// A CPT for one node: `P(value | parent configuration)`.
///
/// Rows are parent configurations in mixed-radix order (first parent is
/// the most significant digit); each row holds `card` probabilities
/// summing to 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Cpt {
    /// Node cardinality (number of values).
    pub card: u32,
    /// Cardinalities of the parents, in parent-list order.
    pub parent_cards: Vec<u32>,
    probs: Vec<f64>,
}

impl Cpt {
    /// Build a CPT from rows; validates shape and row normalization
    /// (rows are renormalized, so counts are accepted too).
    pub fn from_rows(
        card: u32,
        parent_cards: Vec<u32>,
        rows: Vec<Vec<f64>>,
    ) -> Result<Self, String> {
        let expected_rows: usize = parent_cards.iter().map(|&c| c as usize).product();
        if rows.len() != expected_rows {
            return Err(format!("expected {expected_rows} rows, got {}", rows.len()));
        }
        let mut probs = Vec::with_capacity(expected_rows * card as usize);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != card as usize {
                return Err(format!("row {i} has {} entries, expected {card}", row.len()));
            }
            let sum: f64 = row.iter().sum();
            if sum <= 0.0 || sum.is_nan() || row.iter().any(|p| *p < 0.0 || !p.is_finite()) {
                return Err(format!("row {i} is not a valid distribution"));
            }
            probs.extend(row.iter().map(|p| p / sum));
        }
        Ok(Cpt { card, parent_cards, probs })
    }

    /// Number of parent configurations (rows).
    pub fn n_rows(&self) -> usize {
        self.parent_cards.iter().map(|&c| c as usize).product()
    }

    /// Mixed-radix row index of a parent value assignment.
    pub fn row_index(&self, parent_values: &[u32]) -> usize {
        assert_eq!(parent_values.len(), self.parent_cards.len(), "parent arity mismatch");
        let mut idx = 0usize;
        for (v, &c) in parent_values.iter().zip(&self.parent_cards) {
            debug_assert!(*v < c, "parent value out of range");
            idx = idx * c as usize + *v as usize;
        }
        idx
    }

    /// The distribution row for a parent assignment.
    pub fn row(&self, parent_values: &[u32]) -> &[f64] {
        let i = self.row_index(parent_values) * self.card as usize;
        &self.probs[i..i + self.card as usize]
    }

    /// `P(value | parents)`.
    pub fn prob(&self, value: u32, parent_values: &[u32]) -> f64 {
        self.row(parent_values)[value as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_node_cpt() {
        let cpt = Cpt::from_rows(3, vec![], vec![vec![1.0, 1.0, 2.0]]).unwrap();
        assert_eq!(cpt.n_rows(), 1);
        assert_eq!(cpt.prob(2, &[]), 0.5);
        assert_eq!(cpt.prob(0, &[]), 0.25);
    }

    #[test]
    fn mixed_radix_indexing() {
        // Two parents with cards 2 and 3 → 6 rows; row(v1, v2) = v1*3+v2.
        let rows: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64 + 1.0, 1.0]).collect();
        let cpt = Cpt::from_rows(2, vec![2, 3], rows).unwrap();
        assert_eq!(cpt.n_rows(), 6);
        assert_eq!(cpt.row_index(&[0, 0]), 0);
        assert_eq!(cpt.row_index(&[0, 2]), 2);
        assert_eq!(cpt.row_index(&[1, 0]), 3);
        assert_eq!(cpt.row_index(&[1, 2]), 5);
        // Row [1,2] was [6, 1] → normalized.
        assert!((cpt.prob(0, &[1, 2]) - 6.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_malformed_tables() {
        assert!(Cpt::from_rows(2, vec![], vec![]).is_err()); // 0 rows, 1 expected
        assert!(Cpt::from_rows(2, vec![2], vec![vec![1.0, 1.0]]).is_err()); // 1 row, 2 expected
        assert!(Cpt::from_rows(2, vec![], vec![vec![1.0]]).is_err()); // short row
        assert!(Cpt::from_rows(2, vec![], vec![vec![0.0, 0.0]]).is_err()); // zero row
        assert!(Cpt::from_rows(2, vec![], vec![vec![-1.0, 2.0]]).is_err()); // negative
        assert!(Cpt::from_rows(2, vec![], vec![vec![f64::NAN, 1.0]]).is_err());
    }

    #[test]
    fn rows_are_renormalized() {
        let cpt = Cpt::from_rows(2, vec![], vec![vec![30.0, 10.0]]).unwrap();
        assert!((cpt.prob(0, &[]) - 0.75).abs() < 1e-12);
        let row = cpt.row(&[]);
        assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
