//! Discrete Bayesian networks: construction, sampling, fitting,
//! scoring.

use crate::cpt::Cpt;
use crate::graph::Dag;
use dq_table::{AttrIdx, AttrType, Table, Value};
use rand::Rng;
use std::fmt;

/// Errors raised while building or fitting a network.
#[derive(Debug, Clone, PartialEq)]
pub enum BayesError {
    /// A node references an unknown node/attribute.
    UnknownNode(String),
    /// An edge would create a cycle.
    Cycle,
    /// A CPT does not match the declared structure.
    BadCpt(String),
    /// The attribute is not nominal (networks are over nominal
    /// attributes only).
    NotNominal(AttrIdx),
    /// Two nodes were declared over the same attribute.
    DuplicateAttr(AttrIdx),
}

impl fmt::Display for BayesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BayesError::UnknownNode(n) => write!(f, "unknown node `{n}`"),
            BayesError::Cycle => write!(f, "edge would create a cycle"),
            BayesError::BadCpt(m) => write!(f, "bad CPT: {m}"),
            BayesError::NotNominal(a) => write!(f, "attribute {a} is not nominal"),
            BayesError::DuplicateAttr(a) => write!(f, "attribute {a} declared twice"),
        }
    }
}

impl std::error::Error for BayesError {}

/// One node of a network: a nominal attribute plus its CPT.
#[derive(Debug, Clone)]
struct Node {
    attr: AttrIdx,
    card: u32,
    parents: Vec<usize>, // node indices
    cpt: Cpt,
}

/// A discrete Bayesian network over a subset of a schema's nominal
/// attributes.
#[derive(Debug, Clone)]
pub struct BayesianNetwork {
    nodes: Vec<Node>,
    order: Vec<usize>, // topological
}

impl BayesianNetwork {
    /// The attributes covered by the network, in node order.
    pub fn attrs(&self) -> Vec<AttrIdx> {
        self.nodes.iter().map(|n| n.attr).collect()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ancestral sampling: draw one joint assignment, returned as
    /// `(attribute, code)` pairs in node order.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<(AttrIdx, u32)> {
        let mut out = Vec::with_capacity(self.nodes.len());
        self.sample_into(rng, &mut out);
        out
    }

    /// [`BayesianNetwork::sample`] into a caller-provided buffer —
    /// same draws, no per-call allocation (start-value sampling calls
    /// this once per generated record).
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut Vec<(AttrIdx, u32)>) {
        const NO_VALUE: u32 = u32::MAX;
        out.clear();
        out.resize(self.nodes.len(), (0, NO_VALUE));
        // Parent values live on the stack for ordinary networks; the
        // rare wider-than-16-parent node falls back to the heap.
        let mut stack_values = [0u32; 16];
        let mut heap_values: Vec<u32> = Vec::new();
        for &i in &self.order {
            let node = &self.nodes[i];
            let n_parents = node.parents.len();
            let parent_values: &mut [u32] = if n_parents <= stack_values.len() {
                &mut stack_values[..n_parents]
            } else {
                heap_values.resize(n_parents, 0);
                &mut heap_values[..n_parents]
            };
            for (slot, &p) in parent_values.iter_mut().zip(&node.parents) {
                *slot = out[p].1;
            }
            let row = node.cpt.row(parent_values);
            out[i] = (node.attr, draw(rng, row) as u32);
        }
    }

    /// Joint log-likelihood of a full assignment `(attribute, code)`
    /// covering every node (order free). `None` if an attribute is
    /// missing or a code out of range.
    pub fn log_likelihood(&self, assignment: &[(AttrIdx, u32)]) -> Option<f64> {
        let mut values = vec![None; self.nodes.len()];
        for &(attr, code) in assignment {
            if let Some(i) = self.nodes.iter().position(|n| n.attr == attr) {
                if code >= self.nodes[i].card {
                    return None;
                }
                values[i] = Some(code);
            }
        }
        let values: Option<Vec<u32>> = values.into_iter().collect();
        let values = values?;
        let mut ll = 0.0;
        for (i, node) in self.nodes.iter().enumerate() {
            let parent_values: Vec<u32> = node.parents.iter().map(|&p| values[p]).collect();
            let p = node.cpt.prob(values[i], &parent_values);
            if p <= 0.0 {
                return Some(f64::NEG_INFINITY);
            }
            ll += p.ln();
        }
        Some(ll)
    }

    /// Generate a random network over the given `(attribute,
    /// cardinality)` nodes: a random DAG with at most `max_parents`
    /// parents per node and Dirichlet(1)-distributed CPT rows. This is
    /// how benchmark configurations get "one multivariate nominal
    /// start distribution" without hand-crafting it.
    pub fn random<R: Rng + ?Sized>(
        nodes: &[(AttrIdx, u32)],
        max_parents: usize,
        rng: &mut R,
    ) -> BayesianNetwork {
        let n = nodes.len();
        let mut dag = Dag::new(n);
        // Visit in a random permutation; each node may adopt parents
        // among previously visited nodes.
        let mut perm: Vec<usize> = (0..n).collect();
        shuffle(&mut perm, rng);
        for (pos, &i) in perm.iter().enumerate() {
            if pos == 0 {
                continue;
            }
            let n_parents = rng.gen_range(0..=max_parents.min(pos));
            let mut candidates: Vec<usize> = perm[..pos].to_vec();
            shuffle(&mut candidates, rng);
            for &p in candidates.iter().take(n_parents) {
                dag.add_edge(p, i);
            }
        }
        let mut built = Vec::with_capacity(n);
        for (i, &(attr, card)) in nodes.iter().enumerate() {
            let parents: Vec<usize> = dag.parents(i).to_vec();
            let parent_cards: Vec<u32> = parents.iter().map(|&p| nodes[p].1).collect();
            let n_rows: usize = parent_cards.iter().map(|&c| c as usize).product();
            let rows: Vec<Vec<f64>> = (0..n_rows)
                .map(|_| {
                    (0..card).map(|_| -(rng.gen::<f64>().max(f64::MIN_POSITIVE)).ln()).collect()
                })
                .collect();
            let cpt = Cpt::from_rows(card, parent_cards, rows)
                .expect("randomly generated CPT is well-formed");
            built.push(Node { attr, card, parents, cpt });
        }
        let order = dag.topological_order().expect("random DAG is acyclic");
        BayesianNetwork { nodes: built, order }
    }

    /// Fit CPTs by maximum likelihood with Laplace smoothing
    /// (`alpha`) on `table`, keeping the given DAG structure over the
    /// listed nominal attributes. Rows with NULL in any involved
    /// attribute are skipped for that node.
    pub fn fit(
        table: &Table,
        attrs: &[AttrIdx],
        dag: &Dag,
        alpha: f64,
    ) -> Result<BayesianNetwork, BayesError> {
        if dag.len() != attrs.len() {
            return Err(BayesError::BadCpt("DAG size != attribute count".into()));
        }
        let mut cards = Vec::with_capacity(attrs.len());
        for &a in attrs {
            match &table.schema().attr(a).ty {
                AttrType::Nominal { labels } => cards.push(labels.len() as u32),
                _ => return Err(BayesError::NotNominal(a)),
            }
        }
        let order = dag.topological_order().ok_or(BayesError::Cycle)?;
        let mut nodes = Vec::with_capacity(attrs.len());
        for (i, &attr) in attrs.iter().enumerate() {
            let parents: Vec<usize> = dag.parents(i).to_vec();
            let parent_cards: Vec<u32> = parents.iter().map(|&p| cards[p]).collect();
            let n_rows: usize = parent_cards.iter().map(|&c| c as usize).product();
            let card = cards[i];
            let mut counts = vec![vec![alpha; card as usize]; n_rows];
            'rows: for r in 0..table.n_rows() {
                let v = match table.get(r, attr) {
                    Value::Nominal(c) if c < card => c,
                    _ => continue,
                };
                let mut parent_values = Vec::with_capacity(parents.len());
                for &p in &parents {
                    match table.get(r, attrs[p]) {
                        Value::Nominal(c) if c < cards[p] => parent_values.push(c),
                        _ => continue 'rows,
                    }
                }
                let mut idx = 0usize;
                for (pv, &pc) in parent_values.iter().zip(&parent_cards) {
                    idx = idx * pc as usize + *pv as usize;
                }
                counts[idx][v as usize] += 1.0;
            }
            let cpt = Cpt::from_rows(card, parent_cards, counts).map_err(BayesError::BadCpt)?;
            nodes.push(Node { attr, card, parents, cpt });
        }
        Ok(BayesianNetwork { nodes, order })
    }
}

/// Fluent builder for hand-specified networks (the "intuitive
/// specification" path of the paper).
#[derive(Debug, Default)]
pub struct BayesNetBuilder {
    entries: Vec<BuilderEntry>,
}

/// One declared node: attribute, cardinality, parents, CPT rows.
type BuilderEntry = (AttrIdx, u32, Vec<AttrIdx>, Vec<Vec<f64>>);

impl BayesNetBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        BayesNetBuilder::default()
    }

    /// Declare a node for `attr` with `card` values, parent attributes
    /// and CPT rows (mixed-radix parent order, rows normalized on
    /// build).
    pub fn node(
        mut self,
        attr: AttrIdx,
        card: u32,
        parents: Vec<AttrIdx>,
        rows: Vec<Vec<f64>>,
    ) -> Self {
        self.entries.push((attr, card, parents, rows));
        self
    }

    /// Validate and build the network.
    pub fn build(self) -> Result<BayesianNetwork, BayesError> {
        let n = self.entries.len();
        let mut dag = Dag::new(n);
        let attr_pos = |a: AttrIdx| self.entries.iter().position(|e| e.0 == a);
        for (i, (attr, ..)) in self.entries.iter().enumerate() {
            if self.entries.iter().filter(|e| e.0 == *attr).count() > 1 {
                return Err(BayesError::DuplicateAttr(*attr));
            }
            for p in &self.entries[i].2 {
                let pi = attr_pos(*p)
                    .ok_or_else(|| BayesError::UnknownNode(format!("attribute {p}")))?;
                if !dag.add_edge(pi, i) {
                    return Err(BayesError::Cycle);
                }
            }
        }
        let order = dag.topological_order().ok_or(BayesError::Cycle)?;
        let mut nodes = Vec::with_capacity(n);
        for (i, (attr, card, parents, rows)) in self.entries.iter().enumerate() {
            let parent_nodes: Vec<usize> =
                parents.iter().map(|p| attr_pos(*p).expect("checked above")).collect();
            let parent_cards: Vec<u32> = parent_nodes.iter().map(|&p| self.entries[p].1).collect();
            let cpt =
                Cpt::from_rows(*card, parent_cards, rows.clone()).map_err(BayesError::BadCpt)?;
            let _ = i;
            nodes.push(Node { attr: *attr, card: *card, parents: parent_nodes, cpt });
        }
        Ok(BayesianNetwork { nodes, order })
    }
}

fn draw<R: Rng + ?Sized>(rng: &mut R, probs: &[f64]) -> usize {
    let mut x: f64 = rng.gen();
    for (i, &p) in probs.iter().enumerate() {
        x -= p;
        if x <= 0.0 {
            return i;
        }
    }
    probs.len() - 1
}

fn shuffle<R: Rng + ?Sized, T>(xs: &mut [T], rng: &mut R) {
    for i in (1..xs.len()).rev() {
        xs.swap(i, rng.gen_range(0..=i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_table::SchemaBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    /// Rain → WetGrass, the smallest interesting network.
    fn rain_net() -> BayesianNetwork {
        BayesNetBuilder::new()
            .node(0, 2, vec![], vec![vec![0.8, 0.2]]) // P(rain) = 0.2
            .node(
                1,
                2,
                vec![0],
                vec![
                    vec![0.9, 0.1], // no rain → rarely wet
                    vec![0.1, 0.9], // rain → mostly wet
                ],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn sampling_matches_cpts() {
        let net = rain_net();
        let mut r = rng();
        let n = 20_000;
        let mut rain = 0usize;
        let mut wet_given_rain = (0usize, 0usize);
        for _ in 0..n {
            let s = net.sample(&mut r);
            let get = |attr| s.iter().find(|(a, _)| *a == attr).unwrap().1;
            if get(0) == 1 {
                rain += 1;
                wet_given_rain.1 += 1;
                if get(1) == 1 {
                    wet_given_rain.0 += 1;
                }
            }
        }
        let p_rain = rain as f64 / n as f64;
        assert!((p_rain - 0.2).abs() < 0.02, "P(rain) ≈ 0.2, got {p_rain}");
        let p_wet = wet_given_rain.0 as f64 / wet_given_rain.1 as f64;
        assert!((p_wet - 0.9).abs() < 0.03, "P(wet|rain) ≈ 0.9, got {p_wet}");
    }

    #[test]
    fn log_likelihood_is_consistent() {
        let net = rain_net();
        // P(rain=1, wet=1) = 0.2 * 0.9.
        let ll = net.log_likelihood(&[(0, 1), (1, 1)]).unwrap();
        assert!((ll - (0.2f64 * 0.9).ln()).abs() < 1e-12);
        // Order of the assignment pairs does not matter.
        let ll2 = net.log_likelihood(&[(1, 1), (0, 1)]).unwrap();
        assert_eq!(ll, ll2);
        // Missing attribute or bad code.
        assert_eq!(net.log_likelihood(&[(0, 1)]), None);
        assert_eq!(net.log_likelihood(&[(0, 5), (1, 0)]), None);
    }

    #[test]
    fn builder_rejects_bad_structures() {
        // Unknown parent.
        let e = BayesNetBuilder::new()
            .node(0, 2, vec![9], vec![vec![1.0, 1.0], vec![1.0, 1.0]])
            .build()
            .unwrap_err();
        assert!(matches!(e, BayesError::UnknownNode(_)));
        // Cycle.
        let e = BayesNetBuilder::new()
            .node(0, 2, vec![1], vec![vec![1.0, 1.0], vec![1.0, 1.0]])
            .node(1, 2, vec![0], vec![vec![1.0, 1.0], vec![1.0, 1.0]])
            .build()
            .unwrap_err();
        assert!(matches!(e, BayesError::Cycle));
        // Duplicate attribute.
        let e = BayesNetBuilder::new()
            .node(0, 2, vec![], vec![vec![1.0, 1.0]])
            .node(0, 2, vec![], vec![vec![1.0, 1.0]])
            .build()
            .unwrap_err();
        assert!(matches!(e, BayesError::DuplicateAttr(0)));
        // Malformed CPT.
        let e = BayesNetBuilder::new().node(0, 2, vec![], vec![]).build().unwrap_err();
        assert!(matches!(e, BayesError::BadCpt(_)));
    }

    #[test]
    fn random_networks_sample_within_cardinalities() {
        let mut r = rng();
        let nodes = [(0, 3u32), (1, 4u32), (2, 2u32), (3, 5u32)];
        for _ in 0..10 {
            let net = BayesianNetwork::random(&nodes, 2, &mut r);
            assert_eq!(net.len(), 4);
            for _ in 0..50 {
                for (attr, code) in net.sample(&mut r) {
                    let card = nodes.iter().find(|(a, _)| *a == attr).unwrap().1;
                    assert!(code < card, "code {code} out of range for attr {attr}");
                }
            }
        }
    }

    #[test]
    fn fit_recovers_dependency() {
        // Build a table where b copies a; fitting a → b must put the
        // conditional mass on the diagonal.
        let schema =
            SchemaBuilder::new().nominal("a", ["x", "y"]).nominal("b", ["x", "y"]).build().unwrap();
        let mut t = dq_table::Table::new(schema);
        let mut r = rng();
        for _ in 0..500 {
            let v = r.gen_range(0..2u32);
            t.push_row(&[Value::Nominal(v), Value::Nominal(v)]).unwrap();
        }
        let mut dag = Dag::new(2);
        dag.add_edge(0, 1);
        let net = BayesianNetwork::fit(&t, &[0, 1], &dag, 1.0).unwrap();
        // P(b=x | a=x) should be near 1.
        let ll_same = net.log_likelihood(&[(0, 0), (1, 0)]).unwrap();
        let ll_diff = net.log_likelihood(&[(0, 0), (1, 1)]).unwrap();
        assert!(ll_same > ll_diff + 2.0, "diagonal must dominate");
    }

    #[test]
    fn fit_skips_nulls_and_rejects_non_nominal() {
        let schema =
            SchemaBuilder::new().nominal("a", ["x", "y"]).numeric("n", 0.0, 1.0).build().unwrap();
        let mut t = dq_table::Table::new(schema);
        t.push_row(&[Value::Null, Value::Number(0.5)]).unwrap();
        t.push_row(&[Value::Nominal(1), Value::Null]).unwrap();
        let dag = Dag::new(1);
        let net = BayesianNetwork::fit(&t, &[0], &dag, 1.0).unwrap();
        assert_eq!(net.len(), 1);
        let e = BayesianNetwork::fit(&t, &[1], &Dag::new(1), 1.0).unwrap_err();
        assert!(matches!(e, BayesError::NotNominal(1)));
    }
}
