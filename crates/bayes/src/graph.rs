//! Directed acyclic graphs over node indices.

/// A DAG stored as per-node parent lists.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dag {
    parents: Vec<Vec<usize>>,
}

impl Dag {
    /// A DAG with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Dag { parents: vec![Vec::new(); n] }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// Parents of `node`.
    pub fn parents(&self, node: usize) -> &[usize] {
        &self.parents[node]
    }

    /// Add an edge `parent → child`. Returns `false` (and leaves the
    /// graph unchanged) if the edge would create a cycle or a
    /// duplicate.
    pub fn add_edge(&mut self, parent: usize, child: usize) -> bool {
        assert!(parent < self.len() && child < self.len(), "node out of range");
        if parent == child || self.parents[child].contains(&parent) || self.reaches(child, parent) {
            return false;
        }
        self.parents[child].push(parent);
        true
    }

    /// Is `to` reachable from `from` along parent→child edges?
    fn reaches(&self, from: usize, to: usize) -> bool {
        // Walk child→parent from `to` upward looking for `from`
        // (equivalently: from reaches to along forward edges).
        let mut stack = vec![to];
        let mut seen = vec![false; self.len()];
        while let Some(x) = stack.pop() {
            if x == from {
                return true;
            }
            if std::mem::replace(&mut seen[x], true) {
                continue;
            }
            stack.extend(self.parents[x].iter().copied());
        }
        false
    }

    /// A topological order (parents before children). `None` only if
    /// the invariant was broken externally; `add_edge` keeps the graph
    /// acyclic.
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let n = self.len();
        let mut indeg = vec![0usize; n];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (child, ps) in self.parents.iter().enumerate() {
            indeg[child] = ps.len();
            for &p in ps {
                children[p].push(child);
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(x) = queue.pop() {
            order.push(x);
            for &c in &children[x] {
                indeg[c] -= 1;
                if indeg[c] == 0 {
                    queue.push(c);
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_rejects_cycles() {
        let mut g = Dag::new(3);
        assert!(g.add_edge(0, 1));
        assert!(g.add_edge(1, 2));
        assert!(!g.add_edge(2, 0), "2→0 closes a cycle");
        assert!(!g.add_edge(0, 0), "self edge");
        assert!(!g.add_edge(0, 1), "duplicate edge");
        assert_eq!(g.parents(2), &[1]);
    }

    #[test]
    fn topological_order_respects_edges() {
        let mut g = Dag::new(4);
        g.add_edge(2, 0);
        g.add_edge(2, 1);
        g.add_edge(0, 3);
        g.add_edge(1, 3);
        let order = g.topological_order().unwrap();
        let pos = |x: usize| order.iter().position(|&y| y == x).unwrap();
        assert!(pos(2) < pos(0));
        assert!(pos(2) < pos(1));
        assert!(pos(0) < pos(3));
        assert!(pos(1) < pos(3));
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        assert!(Dag::new(0).is_empty());
        let g = Dag::new(3);
        assert_eq!(g.topological_order().unwrap().len(), 3);
    }
}
