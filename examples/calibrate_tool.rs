//! The systematic domain-driven development loop of Figure 1: use the
//! test environment to *calibrate* the auditing tool for a domain —
//! run competing configurations against the same generated benchmark
//! and compare their benchmark results before touching real data.
//!
//! ```text
//! cargo run --release --example calibrate_tool
//! ```

use data_audit::core::AuditConfig;
use data_audit::eval::{Baseline, TestEnvironment};
use data_audit::mining::{C45Config, InducerKind, Pruning};
use data_audit::pollute::pollute;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Phase 1-2 (domain analysis → test data generation): the sec. 6.1
    // baseline stands in for the domain expert's parameters.
    let baseline = Baseline::new(99);
    let generator = baseline.generator(60, 8000);
    let mut rng = StdRng::seed_from_u64(99);
    let benchmark = generator.generate(&mut rng);
    let (dirty, log) = pollute(&benchmark.clean, &baseline.pollution, &mut rng);
    println!(
        "benchmark: {} records, {} ground-truth rules, {:.1}% polluted\n",
        dirty.n_rows(),
        benchmark.rules.len(),
        log.prevalence() * 100.0
    );

    // Phase 3-4 (algorithm selection + adjustment): candidate
    // configurations of the mining step.
    let candidates: Vec<(&str, AuditConfig)> = vec![
        ("c4.5 + paper adjustments", AuditConfig::default()),
        (
            "c4.5, pessimistic pruning",
            AuditConfig {
                inducer: InducerKind::C45(C45Config {
                    pruning: Pruning::PessimisticError,
                    ..C45Config::default()
                }),
                ..AuditConfig::default()
            },
        ),
        ("naive bayes", AuditConfig { inducer: InducerKind::NaiveBayes, ..AuditConfig::default() }),
        ("oner", AuditConfig { inducer: InducerKind::OneR, ..AuditConfig::default() }),
    ];

    println!(
        "{:<28}{:>13}{:>13}{:>13}{:>12}",
        "configuration", "sensitivity", "specificity", "correction", "seconds"
    );
    for (name, audit) in candidates {
        let env = TestEnvironment {
            generator: generator.clone(),
            pollution: baseline.pollution.clone(),
            audit,
        };
        let r =
            env.audit_prepared(benchmark.clone(), dirty.clone(), log.clone()).expect("audit runs");
        println!(
            "{:<28}{:>13.3}{:>13.4}{:>13.3}{:>12.2}",
            name,
            r.sensitivity(),
            r.specificity(),
            r.correction_improvement(),
            r.induction_secs + r.detection_secs
        );
    }
    println!(
        "\nIterate until the benchmark results satisfy the quality engineer,\n\
         then point the chosen configuration at the real database (Figure 1, step 5)."
    );
}
