//! Domain-expert path: write the domain dependencies by hand (the rule
//! parser mirrors the paper's TDG-rule syntax), generate compliant
//! data, and use the audit **asynchronously** — structure induced once
//! offline, fresh records checked at load time (the warehouse-loading
//! mode of sec. 2.2) — then apply supervised corrections.
//!
//! ```text
//! cargo run --release --example custom_rules
//! ```

use data_audit::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let schema = SchemaBuilder::new()
        .nominal("brv", ["404", "501", "601"])
        .nominal("gbm", ["901", "911", "921"])
        .nominal("kbm", ["01", "02", "03"])
        .integer("displacement", 600.0, 8000.0)
        .build()
        .expect("schema is well-formed");

    // The paper's QUIS dependencies, written as TDG-rules.
    let rules = RuleSet::from_rules(vec![
        parse_rule(&schema, "brv = 404 -> gbm = 901").unwrap(),
        parse_rule(&schema, "kbm = 01 and gbm = 901 -> brv = 501").unwrap(),
        parse_rule(&schema, "gbm = 921 -> displacement > 4000").unwrap(),
    ]);
    println!("domain rules:\n{}\n", rules.render(&schema));

    // Offline: generate the historical database and induce structure.
    let mut rng = StdRng::seed_from_u64(7);
    let generator = TestDataGenerator::new(schema.clone(), 0, 20_000);
    let history = generator.generate_with_rules(&rules, &mut rng);
    let auditor = Auditor::default();
    let model = auditor.induce(&history.clean).expect("induction runs");
    println!("induced structure model:\n{}\n", model.render(&schema));

    // Online: check a fresh load batch against the prepared model.
    let mut batch = Table::new(schema.clone());
    for record in [
        // consistent with the rules
        vec![Value::Nominal(0), Value::Nominal(0), Value::Nominal(1), Value::Number(2000.0)],
        // violates brv = 404 → gbm = 901
        vec![Value::Nominal(0), Value::Nominal(1), Value::Nominal(2), Value::Number(2000.0)],
        // violates gbm = 921 → displacement > 4000
        vec![Value::Nominal(2), Value::Nominal(2), Value::Nominal(2), Value::Number(900.0)],
        // missing gbm — the completeness dimension
        vec![Value::Nominal(0), Value::Null, Value::Nominal(1), Value::Number(2100.0)],
    ] {
        batch.push_row(&record).expect("batch record matches schema");
    }
    let report = auditor.detect(&model, &batch);
    println!("load-time check of {} records:", batch.n_rows());
    for row in 0..batch.n_rows() {
        match report.best_finding_for(row) {
            Some(f) => println!("  row {row}: SUSPICIOUS — {}", f.render(&schema)),
            None => println!("  row {row}: ok"),
        }
    }

    // Supervised correction: the quality engineer applies the proposals.
    let corrections = propose_corrections(&report);
    println!("\nproposed corrections:");
    for c in &corrections {
        println!(
            "  row {}: {} := {} (confidence {:.1}%)",
            c.row,
            schema.attr(c.attr).name,
            schema.display_value(c.attr, &c.new),
            c.confidence * 100.0
        );
    }
    let mut repaired = batch.clone();
    apply_corrections(&mut repaired, &corrections).expect("corrections apply");
    let after = auditor.detect(&model, &repaired);
    println!(
        "\nsuspicious before: {}, after applying corrections: {}",
        report.n_suspicious(),
        after.n_suspicious()
    );
}
