//! Quickstart: the full data-auditing loop on a small artificial
//! relation — generate structured data, corrupt it in a controlled
//! way, audit the dirty table and score the findings against the
//! ground truth.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use data_audit::eval::{score_correction, score_detection, CORRECTION_TOLERANCE};
use data_audit::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Declare the relation: domains are first-class, because both
    //    the generator and the satisfiability test work on them.
    let schema = SchemaBuilder::new()
        .nominal("product", ["disc", "drum", "vent", "cer"])
        .nominal("plant", ["B10", "B20", "M05"])
        .nominal("line", ["L1", "L2", "L3", "L4"])
        .numeric("weight_kg", 0.5, 25.0)
        .build()
        .expect("schema is well-formed");

    // 2. Generate 5000 records following 10 random *natural* rules
    //    (non-tautological, non-redundant, conflict-free — Defs. 4-6).
    let mut rng = StdRng::seed_from_u64(42);
    let generator = TestDataGenerator::new(schema.clone(), 10, 5000);
    let benchmark = generator.generate(&mut rng);
    println!("ground-truth rules:");
    println!("{}\n", benchmark.rules.render(&schema));

    // 3. Corrupt it: the paper's five polluters, each with an
    //    activation probability.
    let (dirty, log) = pollute(&benchmark.clean, &PollutionConfig::standard(), &mut rng);
    println!(
        "polluted {} of {} records ({:.1}% prevalence)\n",
        log.n_corrupted_rows(),
        dirty.n_rows(),
        log.prevalence() * 100.0
    );

    // 4. Audit: one C4.5 classifier per attribute, deviations scored by
    //    error confidence, findings ranked.
    let auditor = Auditor::default(); // 80% minimal error confidence
    let (model, report) = auditor.run(&dirty).expect("audit runs");
    println!("structure model ({} probabilistic integrity constraints):", model.n_rules());
    for line in model.render(&schema).lines().take(8) {
        println!("  {line}");
    }
    println!("\ntop findings:");
    println!("{}\n", report.render_top(&schema, 5));

    // 5. Score against the pollution log — the measures of sec. 4.3.
    let detection = score_detection(&log, &report);
    let corrections = propose_corrections(&report);
    let correction = score_correction(&log, &dirty, &corrections, CORRECTION_TOLERANCE);
    println!(
        "sensitivity {:.3}  specificity {:.4}  quality-of-correction {:.3}",
        detection.sensitivity().unwrap_or(0.0),
        detection.specificity().unwrap_or(1.0),
        correction.improvement().unwrap_or(0.0),
    );
}
