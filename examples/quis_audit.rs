//! The sec. 6.2 scenario: audit the (synthetic) QUIS engine-composition
//! table — ~200k records, 8 attributes, strong domain dependencies,
//! realistic coding errors — and rank the suspicious records by error
//! confidence for expert cross-checking.
//!
//! ```text
//! cargo run --release --example quis_audit [rows] [threads]
//! ```
//!
//! `threads` defaults to the available hardware parallelism; `1` forces
//! the legacy serial path (the findings are identical either way — only
//! the wall-clock time changes).

use data_audit::prelude::*;
use data_audit::quis::{generate_quis, QuisConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let rows: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(200_000);
    let threads: data_audit::exec::Parallelism =
        std::env::args().nth(2).and_then(|a| a.parse().ok()).into();
    println!("generating synthetic QUIS engine table ({rows} rows)…");
    let mut rng = StdRng::seed_from_u64(2003);
    let bench = generate_quis(&QuisConfig::default().with_rows(rows), &mut rng);
    let schema = bench.dirty.schema().clone();

    println!(
        "running the audit on {} worker thread(s) (paper: ~21 min on an Athlon 900MHz for 200k)…",
        threads.resolve()
    );
    let auditor = Auditor::new(AuditConfig { threads, ..AuditConfig::default() });
    let t0 = Instant::now();
    let model = auditor.induce(&bench.dirty).expect("audit runs");
    let report = auditor.detect(&model, &bench.dirty);
    println!("done in {:.1}s\n", t0.elapsed().as_secs_f64());

    println!(
        "{} suspicious records of {} (paper: ~6000 of 200k)",
        report.n_suspicious(),
        bench.dirty.n_rows()
    );

    // The paper's example dependencies should be rediscovered with
    // matching supports (≈16118 and ≈9530 at 200k rows).
    println!("\nstrongest structure rules:");
    let mut rules: Vec<(f64, String)> = Vec::new();
    for m in &model.models {
        for r in &m.rules {
            let label = m.spec.label_of(&schema, m.class_attr, r.predicted);
            rules.push((r.support, r.render(&schema, m.class_attr, &label)));
        }
    }
    rules.sort_by(|a, b| b.0.total_cmp(&a.0));
    for (_, r) in rules.iter().take(8) {
        println!("  {r}");
    }

    println!("\ntop-ranked findings (expert cross-check list):");
    for f in report.top(10) {
        let verified = if bench.log.is_row_corrupted(f.row) { "true error" } else { "outlier" };
        println!("  {}  [{verified}]", f.render(&schema));
    }

    // Unlike the paper ("an exact quantification … turned out to be too
    // expensive"), the synthetic substrate has ground truth:
    let detection = data_audit::eval::score_detection(&bench.log, &report);
    println!(
        "\nground truth: sensitivity {:.3}, specificity {:.4}",
        detection.sensitivity().unwrap_or(0.0),
        detection.specificity().unwrap_or(1.0)
    );
}
