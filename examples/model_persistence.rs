//! Train once, audit forever: persist a structure model, reload it in
//! a "later process", and stream fresh data through it at bounded
//! memory — with a report byte-identical to the in-memory path.
//!
//! ```text
//! cargo run --release --example model_persistence
//! ```

use data_audit::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A reference snapshot: rule-structured data with controlled
    //    pollution (so the audit has something to find).
    let schema = SchemaBuilder::new()
        .nominal("product", ["disc", "drum", "vent", "cer"])
        .nominal("plant", ["B10", "B20", "M05"])
        .numeric("weight_kg", 0.5, 25.0)
        .date_ymd("built", (1999, 1, 1), (2003, 12, 31))
        .build()
        .expect("schema is well-formed");
    let mut rng = StdRng::seed_from_u64(2003);
    let benchmark = TestDataGenerator::new(schema.clone(), 8, 4000).generate(&mut rng);
    let (dirty, _log) = pollute(&benchmark.clean, &PollutionConfig::standard(), &mut rng);

    // 2. Train once: induce off-line and save the model. The file is
    //    versioned, human-diffable text; its header pins the schema
    //    fingerprint so it can never audit the wrong relation.
    let auditor = Auditor::default();
    let model = auditor.induce(&dirty).expect("induction succeeds");
    let mut model_file = Vec::new();
    model.save(&schema, &mut model_file).expect("model serializes");
    let text = String::from_utf8(model_file.clone()).unwrap();
    println!(
        "saved structure model: {} rules, {} bytes, fingerprint line: {}",
        model.n_rules(),
        model_file.len(),
        text.lines().nth(1).unwrap(),
    );
    for rule_line in text.lines().filter(|l| l.starts_with("rule ")).take(3) {
        println!("  {rule_line}");
    }

    // 3. Audit forever: a later process reloads the model and streams
    //    a CSV through it in small batches. Nothing but one batch is
    //    ever in memory.
    let loaded = StructureModel::load(&schema, model_file.as_slice()).expect("model loads");
    let mut csv = Vec::new();
    write_csv(&dirty, &mut csv).expect("csv serializes");
    let batches = CsvChunkReader::new(schema.clone(), csv.as_slice(), 256).expect("valid header");
    let streamed = auditor.detect_stream(&loaded, batches).expect("stream audit succeeds");

    // 4. The guarantee: byte-identical to the in-memory round trip.
    let in_memory = auditor.detect(&model, &dirty);
    assert_eq!(streamed.to_csv(&schema), in_memory.to_csv(&schema));
    assert_eq!(streamed.record_confidence, in_memory.record_confidence);
    println!(
        "\nstreamed {} rows in 256-row batches: {} suspicious, identical to the in-memory report",
        streamed.n_rows(),
        streamed.n_suspicious(),
    );
    println!("top findings:\n{}", streamed.render_top(&schema, 5));
}
