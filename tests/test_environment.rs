//! Integration of the Figure 2 test environment across crates:
//! generate (dq-tdg) → pollute (dq-pollute) → audit (dq-core) →
//! score (dq-eval), all through the umbrella crate's public API.

use data_audit::core::AuditConfig;
use data_audit::eval::TestEnvironment;
use data_audit::prelude::*;

fn environment() -> TestEnvironment {
    let schema = SchemaBuilder::new()
        .nominal("a", ["v1", "v2", "v3", "v4"])
        .nominal("b", ["v1", "v2", "v3", "v4"])
        .nominal("c", ["w1", "w2", "w3", "w4", "w5"])
        .numeric("x", 0.0, 500.0)
        .date_ymd("d", (2000, 1, 1), (2004, 12, 31))
        .build()
        .unwrap();
    TestEnvironment {
        generator: TestDataGenerator::new(schema, 15, 4000),
        pollution: PollutionConfig::standard(),
        audit: AuditConfig::default(),
    }
}

#[test]
fn full_pipeline_accounts_for_every_row() {
    let r = environment().run(1).unwrap();
    // Row accounting holds across all four stages.
    assert_eq!(r.log.n_rows(), r.dirty.n_rows());
    assert_eq!(r.report.n_rows(), r.dirty.n_rows());
    assert_eq!(r.detection.total() as usize, r.dirty.n_rows());
    // The confusion matrix's positive side equals the log's count.
    assert_eq!((r.detection.tp + r.detection.fn_) as usize, r.log.n_corrupted_rows());
}

#[test]
fn flagged_rows_match_report_confidences() {
    let r = environment().run(2).unwrap();
    for row in 0..r.report.n_rows() {
        assert_eq!(
            r.report.is_flagged(row),
            r.report.record_confidence[row] >= r.report.min_confidence
        );
    }
    // Every finding's row reaches the minimal confidence.
    for f in &r.report.findings {
        assert!(f.confidence >= r.report.min_confidence);
        assert!(r.report.is_flagged(f.row));
    }
}

#[test]
fn audit_quality_is_in_the_paper_regime() {
    let r = environment().run(3).unwrap();
    assert!(r.specificity() > 0.95, "specificity {}", r.specificity());
    assert!(r.sensitivity() > 0.0, "sensitivity {}", r.sensitivity());
    assert!(
        r.sensitivity() < 0.9,
        "data auditing can only find deviations from regularities; {} is implausible",
        r.sensitivity()
    );
}

#[test]
fn environment_is_deterministic() {
    let env = environment();
    let a = env.run(4).unwrap();
    let b = env.run(4).unwrap();
    assert_eq!(a.detection, b.detection);
    assert_eq!(a.correction, b.correction);
    assert_eq!(a.n_model_rules, b.n_model_rules);
}

#[test]
fn pollution_factor_increases_prevalence() {
    let env = environment();
    let light = env.run(5).unwrap();
    let heavy = TestEnvironment { pollution: PollutionConfig::standard().with_factor(4.0), ..env }
        .run(5)
        .unwrap();
    assert!(heavy.log.prevalence() > 2.0 * light.log.prevalence());
}

#[test]
fn corrections_never_target_unflagged_rows() {
    let r = environment().run(6).unwrap();
    let corrections = propose_corrections(&r.report);
    for c in &corrections {
        assert!(r.report.is_flagged(c.row));
        assert!(c.confidence >= r.report.min_confidence);
    }
    // One correction per flagged row at most.
    let mut rows: Vec<usize> = corrections.iter().map(|c| c.row).collect();
    rows.sort_unstable();
    rows.dedup();
    assert_eq!(rows.len(), corrections.len());
}
