//! Equivalence suite for the compiled/parallel test-data generator:
//! the fast path of `dq_tdg::generate_table` (compiled rule programs,
//! dirty-attribute invalidation, worker-pool sharding) must emit
//! *byte-identical* tables and equal reports to the retained serial
//! interpreted path `generate_reference`, at every thread count — and
//! the compiled pollution-side violation accounting must agree with
//! the interpreted scans on the quis-50k fixture.

use data_audit::eval::Baseline;
use data_audit::logic::eval::violations_reference;
use data_audit::pollute::{count_violations, unexplained_violations, violating_rows};
use data_audit::prelude::*;
use data_audit::quis::{generate_quis, QuisConfig};
use data_audit::tdg::{generate_rule_set, generate_rule_set_reference, GEN_CHUNK_ROWS};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Bit-exact cell comparison (floats compared by bit pattern — "byte
/// identical" means byte identical).
fn cells_identical(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Number(x), Value::Number(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

fn assert_tables_identical(a: &Table, b: &Table) {
    assert_eq!(a.n_rows(), b.n_rows(), "row counts differ");
    assert_eq!(a.n_cols(), b.n_cols(), "column counts differ");
    for r in 0..a.n_rows() {
        for c in 0..a.n_cols() {
            assert!(
                cells_identical(&a.get(r, c), &b.get(r, c)),
                "cell ({r}, {c}): {:?} vs {:?}",
                a.get(r, c),
                b.get(r, c)
            );
        }
    }
}

/// The compiled, pool-sharded generator reproduces the serial
/// interpreted reference byte for byte at threads 1, 2 and 4, on the
/// paper's 100-rule baseline and across multiple RNG chunks.
#[test]
fn parallel_generation_is_byte_identical_to_reference() {
    let baseline = Baseline::new(7);
    let mut rng = StdRng::seed_from_u64(7);
    let (rules, _) = generate_rule_set(&baseline.schema, &baseline.rule_config(100), &mut rng);
    let rows = GEN_CHUNK_ROWS + GEN_CHUNK_ROWS / 2; // crosses a chunk boundary
    let mut generator = baseline.generator(100, rows);

    let reference = generator.generate_with_rules_reference(&rules, &mut StdRng::seed_from_u64(11));
    for threads in [1usize, 2, 4] {
        generator.data.threads = threads.into();
        let fast = generator.generate_with_rules(&rules, &mut StdRng::seed_from_u64(11));
        assert_eq!(fast.gen_report, reference.gen_report, "threads={threads}");
        assert_tables_identical(&fast.clean, &reference.clean);
    }

    // The emitted table actually follows the rules (up to the reported
    // unresolved violations).
    let total: usize = rules.iter().map(|r| violations_reference(r, &reference.clean).len()).sum();
    assert_eq!(total as u64, reference.gen_report.unresolved_violations);
}

/// The memoized rule-set generator reproduces the uncached reference
/// byte for byte on the baseline configuration.
#[test]
fn rule_generation_is_byte_identical_to_reference() {
    let baseline = Baseline::new(7);
    let cfg = baseline.rule_config(60);
    let (fast, fast_report) =
        generate_rule_set(&baseline.schema, &cfg, &mut StdRng::seed_from_u64(7));
    let (reference, ref_report) =
        generate_rule_set_reference(&baseline.schema, &cfg, &mut StdRng::seed_from_u64(7));
    assert_eq!(fast, reference);
    assert_eq!(fast_report, ref_report);
}

/// The quis-50k fixture: pollution logs are deterministic and
/// complete, and the compiled violation accounting in `dq_pollute`
/// agrees with the interpreted per-rule scans.
#[test]
fn quis_50k_pollution_logs_and_violation_scans_agree() {
    let cfg = QuisConfig::default().with_rows(50_000);
    let a = generate_quis(&cfg, &mut StdRng::seed_from_u64(42));
    let b = generate_quis(&cfg, &mut StdRng::seed_from_u64(42));

    // The pollution pipeline is untouched by the compiled layer: two
    // runs are byte-identical, log included.
    assert_tables_identical(&a.clean, &b.clean);
    assert_tables_identical(&a.dirty, &b.dirty);
    assert_eq!(a.log.cells.len(), b.log.cells.len());
    assert_eq!(a.log.provenance, b.log.provenance);
    assert_eq!(a.log.deleted_clean_rows, b.log.deleted_clean_rows);
    for (x, y) in a.log.cells.iter().zip(&b.log.cells) {
        assert_eq!(x, y);
    }

    // Compiled violation accounting == interpreted scans.
    let schema = a.dirty.schema();
    let rules = RuleSet::from_rules(vec![
        parse_rule(schema, "brv = 404 -> gbm = 901").unwrap(),
        parse_rule(schema, "kbm = 01 and gbm = 901 -> brv = 501").unwrap(),
    ]);
    let counts = count_violations(&a.dirty, &rules);
    for (i, rule) in rules.iter().enumerate() {
        assert_eq!(counts[i], violations_reference(rule, &a.dirty).len(), "rule {i}");
    }
    assert_eq!(count_violations(&a.clean, &rules), vec![0, 0], "clean table follows the rules");

    // Every violating dirty row is a logged corruption: pollution is
    // the only source of rule violations.
    assert!(unexplained_violations(&a.dirty, &rules, &a.log).is_empty());
    assert!(!violating_rows(&a.dirty, &rules).is_empty(), "pollution must break something");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Fast path ≡ reference on random small schemas, rule counts and
    /// row counts (several RNG chunks when rows allow), at 1 and 3
    /// worker threads.
    #[test]
    fn generation_equivalence_on_random_configs(
        seed in 0u64..5_000,
        n_rules in 0usize..10,
        rows in 50usize..400,
        card in 3usize..6,
    ) {
        let schema = SchemaBuilder::new()
            .nominal_sized("a", card)
            .nominal_sized("b", card)
            .numeric("x", 0.0, 50.0)
            .build()
            .unwrap();
        let generator = TestDataGenerator::new(schema, n_rules, rows);
        let mut gen_rng = StdRng::seed_from_u64(seed);
        let b = generator.generate(&mut gen_rng);
        let reference =
            generator.generate_with_rules_reference(&b.rules, &mut StdRng::seed_from_u64(seed ^ 1));
        for threads in [1usize, 3] {
            let mut g = generator.clone();
            g.data.threads = threads.into();
            let fast = g.generate_with_rules(&b.rules, &mut StdRng::seed_from_u64(seed ^ 1));
            prop_assert_eq!(&fast.gen_report, &reference.gen_report);
            assert_tables_identical(&fast.clean, &reference.clean);
        }
    }
}
