//! The streaming redesign's equivalence contract, pinned end to end:
//!
//! * streamed generation ([`GenerateStream`]) must be **byte-identical**
//!   to the in-memory [`generate_table`] at every batch size × thread
//!   count — CSV bytes AND f64 bit patterns, not approximate equality;
//! * deviation detection over the out-of-core paged backend
//!   ([`PagedTable`]) must reproduce the in-memory
//!   [`Auditor::detect`] report exactly (findings CSV + per-record
//!   confidence f64 bits) on randomly generated, randomly polluted
//!   tables.
//!
//! These are the properties that make `--stream-chunk-rows`, paged
//! audits and the CI `ulimit -v` run trustworthy: streaming is a
//! memory envelope, never a different answer.

use data_audit::prelude::*;
use data_audit::tdg::{generate_rule_set, DataGenConfig, GenerateStream, RuleGenConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    SchemaBuilder::new()
        .nominal("a", ["v1", "v2", "v3", "v4"])
        .nominal("b", ["v1", "v2", "v3", "v4"])
        .nominal("c", ["w1", "w2", "w3"])
        .numeric("x", 0.0, 100.0)
        .numeric("y", -50.0, 50.0)
        .build()
        .unwrap()
}

fn csv(table: &Table) -> String {
    let mut buf = Vec::new();
    write_csv(table, &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

/// Cell equality at the bit level: numbers compare by `f64::to_bits`,
/// so `-0.0 != 0.0` and byte-identity claims stay honest.
fn assert_cells_bit_equal(a: &Table, b: &Table) {
    assert_eq!(a.n_rows(), b.n_rows());
    for r in 0..a.n_rows() {
        for c in 0..a.n_cols() {
            match (a.get(r, c), b.get(r, c)) {
                (Value::Number(x), Value::Number(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits(), "row {r} col {c}: {x} vs {y}");
                }
                (x, y) => assert_eq!(x, y, "row {r} col {c}"),
            }
        }
    }
}

fn drain(mut source: impl BatchSource) -> Table {
    let mut out = Table::new(source.schema().clone());
    while let Some(batch) = source.next_batch().unwrap() {
        assert!(!batch.is_empty(), "batches must never be empty");
        out.append_rows(&batch).unwrap();
        assert_eq!(source.rows_emitted(), out.n_rows());
    }
    out
}

/// Streamed generation ≡ `generate_table`, across batch sizes
/// {1, 7, 4096} × threads {1, 2, 4}: identical CSV bytes, identical
/// f64 bits, identical generation report, identical caller-RNG
/// consumption.
#[test]
fn generate_stream_matches_generate_table_across_chunks_and_threads() {
    let schema = schema();
    let n_rows = data_audit::tdg::GEN_CHUNK_ROWS + 777;
    let (rules, _) = generate_rule_set(
        &schema,
        &RuleGenConfig { n_rules: 10, ..RuleGenConfig::default() },
        &mut StdRng::seed_from_u64(3),
    );
    let config = DataGenConfig::new(&schema, n_rows);

    let mut rng = StdRng::seed_from_u64(77);
    let (reference, reference_report) =
        data_audit::tdg::generate_table(&schema, &rules, &config, &mut rng);
    let reference_csv = csv(&reference);
    let sentinel: u64 = rng.gen();

    for threads in [1usize, 2, 4] {
        for batch_rows in [1usize, 7, 4096] {
            let mut cfg = config.clone();
            cfg.threads = threads.into();
            let mut rng = StdRng::seed_from_u64(77);
            let mut stream = GenerateStream::new(schema.clone(), rules.clone(), cfg, &mut rng)
                .with_batch_rows(batch_rows);
            // The stream draws its chunk plans at construction and
            // never touches the caller RNG again — downstream seeded
            // pollution sees the same state as after `generate_table`.
            assert_eq!(rng.gen::<u64>(), sentinel, "caller RNG state must match");
            assert_eq!(stream.row_count_hint(), Some(n_rows));
            let streamed = drain(&mut stream);
            assert_eq!(csv(&streamed), reference_csv, "threads={threads} batch_rows={batch_rows}");
            assert_cells_bit_equal(&streamed, &reference);
            assert_eq!(
                stream.report(),
                &reference_report,
                "threads={threads} batch_rows={batch_rows}"
            );
        }
    }
}

/// The zero-fault identity: wrapping any stage of the pipeline in the
/// chaos adapters with an **empty** [`FaultPlan`] changes nothing —
/// same bytes through [`FaultRead`]/[`FaultWrite`], same batches and
/// f64 bits through [`FaultSource`], same caller-visible
/// [`BatchSource`] accounting. This is what makes the chaos soak
/// meaningful: any divergence under a seeded plan is the *plan's*
/// doing, not the wrappers'.
#[test]
fn empty_fault_plan_is_a_pure_pass_through() {
    use std::io::{Read as _, Write as _};

    let schema = schema();
    let (rules, _) = generate_rule_set(
        &schema,
        &RuleGenConfig { n_rules: 8, ..RuleGenConfig::default() },
        &mut StdRng::seed_from_u64(5),
    );
    let config = DataGenConfig::new(&schema, 1500);
    let mut rng = StdRng::seed_from_u64(9);
    let (reference, _) = data_audit::tdg::generate_table(&schema, &rules, &config, &mut rng);
    let reference_csv = csv(&reference);
    let plan = FaultPlan::none();

    // Source level: batch stream unchanged, batch boundaries included.
    let mut wrapped = FaultSource::new(reference.batches(113), &plan);
    assert_eq!(wrapped.row_count_hint(), reference.batches(113).row_count_hint());
    let streamed = drain(&mut wrapped);
    assert_cells_bit_equal(&streamed, &reference);
    assert_eq!(csv(&streamed), reference_csv);

    // Read level: identical bytes through FaultRead.
    let mut read_back = Vec::new();
    FaultRead::new(reference_csv.as_bytes(), &plan).read_to_end(&mut read_back).unwrap();
    assert_eq!(read_back, reference_csv.as_bytes());

    // Write level: identical bytes through FaultWrite.
    let mut writer = FaultWrite::new(Vec::new(), &plan);
    writer.write_all(reference_csv.as_bytes()).unwrap();
    writer.flush().unwrap();
    assert_eq!(writer.into_inner(), reference_csv.as_bytes());
}

/// Detection over the paged on-disk backend ≡ in-memory detection, on
/// random polluted tables: same findings CSV, same per-record
/// confidence bits.
#[test]
fn paged_backend_detect_matches_in_memory_detect() {
    let schema = schema();
    let mut rng = StdRng::seed_from_u64(41);
    let dir = std::env::temp_dir().join(format!("dq-stream-equivalence-{}", std::process::id()));
    for trial in 0..3u64 {
        let generator = TestDataGenerator::new(schema.clone(), 8, 1200);
        let benchmark = generator.generate(&mut rng);
        let factor = 1.0 + trial as f64;
        let (dirty, _log) =
            pollute(&benchmark.clean, &PollutionConfig::standard().with_factor(factor), &mut rng);

        let auditor = Auditor::new(AuditConfig { threads: 2.into(), ..AuditConfig::default() });
        let model = auditor.induce(&dirty).unwrap();
        let reference = auditor.detect(&model, &dirty);

        // Spill the dirty table to a paged directory in odd-sized
        // batches (exercising page/batch misalignment), reopen, and
        // detect over the paged BatchSource.
        let trial_dir = dir.join(format!("t{trial}"));
        let paged = PagedWriter::create(&trial_dir, dirty.schema().clone(), 256)
            .unwrap()
            .spill(dirty.batches(177))
            .unwrap();
        assert_eq!(paged.n_rows(), dirty.n_rows());
        let report = auditor.detect_stream(&model, paged.batches()).unwrap();

        assert_eq!(
            report.to_csv(dirty.schema()),
            reference.to_csv(dirty.schema()),
            "trial {trial}"
        );
        assert_eq!(report.record_confidence.len(), reference.record_confidence.len());
        for (i, (a, b)) in
            report.record_confidence.iter().zip(&reference.record_confidence).enumerate()
        {
            assert_eq!(a.to_bits(), b.to_bits(), "record confidence {i} of trial {trial}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
