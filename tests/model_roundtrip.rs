//! The train-once / audit-forever round-trip guarantee.
//!
//! For any workspace-generated dataset, `induce → save → load →
//! detect_stream` — at any chunk size ≥ 1 and any thread count — must
//! produce a report **byte-identical** to the in-memory `induce →
//! detect` path. The comparison is literal: the rendered report CSV
//! and corrections CSV bytes, plus the exact `f64` finding lists.
//! CI runs this suite twice (default parallelism and `DQ_THREADS=1`),
//! so the guarantee is pinned on both scheduling regimes.

use data_audit::prelude::*;
use dq_quis::{generate_quis, QuisConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Workspace-generated fixtures: a mixed-type TDG benchmark, a QUIS
/// excerpt, and a numeric/date-heavy table.
fn fixtures() -> Vec<(&'static str, Table)> {
    let mixed = SchemaBuilder::new()
        .nominal("color", ["red", "green", "blue", "grey"])
        .nominal("shape", ["disc", "drum", "vent"])
        .numeric("size", 0.0, 100.0)
        .date_ymd("built", (1999, 1, 1), (2003, 12, 31))
        .build()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(91);
    let tdg = TestDataGenerator::new(mixed, 10, 1800).generate(&mut rng);
    let (tdg_dirty, _) = pollute(&tdg.clean, &PollutionConfig::standard(), &mut rng);

    let quis = generate_quis(&QuisConfig::default().with_rows(4000), &mut rng);

    let ordered = SchemaBuilder::new()
        .nominal("x", ["lo", "hi"])
        .numeric("n", 0.0, 100.0)
        .date_ymd("d", (2000, 1, 1), (2010, 1, 1))
        .build()
        .unwrap();
    let base = dq_table::date::days_from_civil(2001, 1, 1);
    let mut t = Table::new(ordered);
    for i in 0..1200 {
        let (x, n) =
            if i % 2 == 0 { (0, 10.0 + (i % 9) as f64) } else { (1, 80.0 + (i % 9) as f64) };
        let d = if i % 13 == 0 { Value::Null } else { Value::Date(base + (i % 40) as i64) };
        t.push_row(&[Value::Nominal(x), Value::Number(n), d]).unwrap();
    }
    t.push_row(&[Value::Nominal(0), Value::Number(97.0), Value::Date(base)]).unwrap();

    vec![("tdg-mixed", tdg_dirty), ("quis", quis.dirty), ("ordered", t)]
}

/// Stream `table` through CSV bytes into `detect_stream`.
fn stream_report(
    auditor: &Auditor,
    model: &StructureModel,
    schema: Arc<Schema>,
    csv: &[u8],
    chunk_rows: usize,
) -> AuditReport {
    let reader = CsvChunkReader::new(schema, csv, chunk_rows).expect("valid header");
    auditor.detect_stream(model, reader).expect("stream detection succeeds")
}

#[test]
fn save_load_detect_stream_is_byte_identical_to_in_memory() {
    for (name, table) in fixtures() {
        let auditor = Auditor::default();
        let model = auditor.induce(&table).unwrap();
        let in_memory = auditor.detect(&model, &table);
        let reference_report = in_memory.to_csv(table.schema());
        let reference_corrections =
            corrections_to_csv(&propose_corrections(&in_memory), table.schema());

        // Persist the model and the data.
        let mut model_bytes = Vec::new();
        model.save(table.schema(), &mut model_bytes).unwrap();
        let loaded = StructureModel::load(table.schema(), model_bytes.as_slice()).unwrap();
        let mut csv = Vec::new();
        write_csv(&table, &mut csv).unwrap();

        for chunk_rows in [1, 7, 113, table.n_rows().max(1), usize::MAX / 2] {
            for threads in [Some(1), Some(2), Some(5), None] {
                let streaming =
                    Auditor::new(AuditConfig { threads: threads.into(), ..AuditConfig::default() });
                let report =
                    stream_report(&streaming, &loaded, table.schema().clone(), &csv, chunk_rows);
                assert_eq!(
                    report.to_csv(table.schema()),
                    reference_report,
                    "{name}: report differs at chunk_rows={chunk_rows}, threads={threads:?}"
                );
                assert_eq!(
                    corrections_to_csv(&propose_corrections(&report), table.schema()),
                    reference_corrections,
                    "{name}: corrections differ at chunk_rows={chunk_rows}, threads={threads:?}"
                );
                // Beyond the rendering: the exact floats and flags.
                assert_eq!(report.findings, in_memory.findings, "{name}");
                assert_eq!(report.record_confidence, in_memory.record_confidence, "{name}");
                assert_eq!(report.n_suspicious(), in_memory.n_suspicious(), "{name}");
            }
        }
    }
}

#[test]
fn save_load_save_is_byte_stable_for_all_fixtures() {
    for (name, table) in fixtures() {
        let model = Auditor::default().induce(&table).unwrap();
        let first = dq_core::render_model(&model, table.schema()).unwrap();
        let loaded = StructureModel::load(table.schema(), first.as_bytes()).unwrap();
        let second = dq_core::render_model(&loaded, table.schema()).unwrap();
        assert_eq!(first, second, "{name}: model file must be a fixed point of save → load");
        assert_eq!(loaded.render(table.schema()), model.render(table.schema()), "{name}");
    }
}

#[test]
fn detect_stream_on_in_memory_batches_matches_detect() {
    // detect_stream is not tied to CSV: hand it the table's own chunks
    // as owned batches and the merged report must still be identical.
    let (_, table) = fixtures().remove(2);
    let auditor = Auditor::default();
    let model = auditor.induce(&table).unwrap();
    let reference = auditor.detect(&model, &table);
    for n_batches in [1, 3, 8] {
        let batches: Vec<Result<Table, dq_table::TableError>> = table
            .chunks(n_batches)
            .into_iter()
            .map(|c| table.select_rows(&c.rows().collect::<Vec<_>>()))
            .collect();
        let source = ReplaySource::new(table.schema().clone(), batches);
        let report = auditor.detect_stream(&model, source).unwrap();
        assert_eq!(report.findings, reference.findings, "n_batches={n_batches}");
        assert_eq!(report.record_confidence, reference.record_confidence);
    }
}

#[test]
fn detect_stream_zero_batches_matches_detect_on_empty_table() {
    // A stream that yields no batches at all (an empty CSV body, a
    // drained queue) must land exactly where the in-memory path lands
    // on a zero-row table: an empty, well-formed report.
    let (_, table) = fixtures().remove(2);
    for threads in [Some(1), Some(4), None] {
        let auditor =
            Auditor::new(AuditConfig { threads: threads.into(), ..AuditConfig::default() });
        let model = auditor.induce(&table).unwrap();
        let empty = Table::new(table.schema().clone());
        let in_memory = auditor.detect(&model, &empty);
        let streamed = auditor
            .detect_stream(&model, ReplaySource::new(table.schema().clone(), Vec::new()))
            .unwrap();
        assert_eq!(streamed.findings, in_memory.findings);
        assert_eq!(streamed.record_confidence, in_memory.record_confidence);
        assert_eq!(streamed.n_rows(), 0);
        assert_eq!(streamed.n_suspicious(), 0);
        assert_eq!(streamed.to_csv(table.schema()), in_memory.to_csv(table.schema()));
        // Header-only CSV input is the same case through the reader.
        let mut csv = Vec::new();
        write_csv(&empty, &mut csv).unwrap();
        let reader = CsvChunkReader::new(table.schema().clone(), csv.as_slice(), 64).unwrap();
        let from_csv = auditor.detect_stream(&model, reader).unwrap();
        assert_eq!(from_csv.to_csv(table.schema()), in_memory.to_csv(table.schema()));
    }
}

#[test]
fn mid_stream_errors_carry_the_physical_line() {
    // A malformed cell in the *middle* of the stream — batches before
    // it already consumed, batches after it never read — must abort
    // with the 1-based physical CSV line of the bad row (header is
    // line 1), not a batch-relative index.
    let (_, table) = fixtures().remove(2);
    let auditor = Auditor::default();
    let model = auditor.induce(&table).unwrap();
    let mut buf = Vec::new();
    write_csv(&table, &mut buf).unwrap();
    let csv = String::from_utf8(buf).unwrap();
    let mut lines: Vec<&str> = csv.lines().collect();
    // Splice the bad row after 150 data rows: with chunk_rows = 64 it
    // sits in the third batch.
    let bad_at = 151; // 0-based index into `lines`; header is lines[0]
    lines.insert(bad_at, "hi,not-a-number,2001-01-01");
    let spliced = lines.join("\n") + "\n";
    let reader = CsvChunkReader::new(table.schema().clone(), spliced.as_bytes(), 64).unwrap();
    let err = auditor.detect_stream(&model, reader).unwrap_err();
    let shown = err.to_string();
    assert!(shown.contains("column `n`"), "got {shown}");
    // Physical line = 0-based position in `lines` + 1.
    assert!(shown.contains(&format!("line {}", bad_at + 1)), "got {shown}");
}

#[test]
fn stream_errors_surface_with_location() {
    let (_, table) = fixtures().remove(2);
    let auditor = Auditor::default();
    let model = auditor.induce(&table).unwrap();
    let mut csv = String::new();
    {
        let mut buf = Vec::new();
        write_csv(&table, &mut buf).unwrap();
        csv.push_str(std::str::from_utf8(&buf).unwrap());
    }
    csv.push_str("hi,not-a-number,2001-01-01\n");
    let reader = CsvChunkReader::new(table.schema().clone(), csv.as_bytes(), 64).unwrap();
    let err = auditor.detect_stream(&model, reader).unwrap_err();
    let shown = err.to_string();
    assert!(shown.contains("column `n`"), "got {shown}");
    assert!(shown.contains(&format!("line {}", table.n_rows() + 2)), "got {shown}");
}

#[test]
fn garbled_model_files_fail_typed_and_never_panic() {
    // The numeric fixture induces threshold splits, so every tree-line
    // shape the format can carry is present in its rendering.
    let (_, table) = fixtures().remove(2);
    let schema = table.schema().clone();
    let model = Auditor::default().induce(&table).unwrap();
    let text = dq_core::render_model(&model, &schema).unwrap();
    let load = |s: &str| StructureModel::load(&schema, s.as_bytes());
    let persistence = |s: &str, tag: &str| match load(s) {
        Err(dq_core::AuditError::Persistence(m)) => m,
        other => panic!("{tag}: expected AuditError::Persistence, got {other:?}"),
    };

    // Truncations: the header cut mid-line, the file cut mid-model,
    // the trailing `end` gone. All typed, none panic (a wrong-arity
    // count vector reaching the flat-tree compiler would).
    for cut in [0, 7, text.len() / 3, text.len() / 2, text.len() - 5] {
        persistence(&text[..cut], &format!("cut at byte {cut}"));
    }

    // Mutate the first line matching `pred`, leaving the rest intact.
    let mutate = |pred: &dyn Fn(&str) -> bool, edit: &dyn Fn(&str) -> String| -> String {
        let mut done = false;
        let mut out = String::new();
        for line in text.lines() {
            if !done && pred(line) {
                out.push_str(&edit(line));
                done = true;
            } else {
                out.push_str(line);
            }
            out.push('\n');
        }
        assert!(done, "fixture rendering lacks the line shape under test");
        out
    };

    // A leaf whose count vector has one entry too many.
    let fat_leaf = mutate(&|l| l.starts_with("tree = L"), &|l| l.replacen(" e=", ",0 e=", 1));
    let msg = persistence(&fat_leaf, "fat leaf");
    assert!(msg.contains("count vector"), "{msg}");

    // A leaf whose count vector lost its last entry.
    let thin_leaf = mutate(&|l| l.starts_with("tree = L"), &|l| {
        let cut = l.rfind(',').unwrap();
        format!("{}{}", &l[..cut], &l[l.find(" e=").unwrap()..])
    });
    persistence(&thin_leaf, "thin leaf");

    // A split node whose count vector grew an entry (`c=` is last on
    // the line).
    let fat_split = mutate(&|l| l.starts_with("tree = S"), &|l| format!("{l},0"));
    let msg = persistence(&fat_split, "fat split");
    assert!(msg.contains("count vector"), "{msg}");

    // A threshold split claiming three children (with a third fraction
    // spliced in so the child/fraction consistency check passes and the
    // threshold-arity check itself is what trips).
    let wide_threshold = mutate(&|l| l.starts_with("tree = S") && l.contains("k=t:"), &|l| {
        l.replacen("n=2", "n=3", 1).replacen(" c=", ",0 c=", 1)
    });
    let msg = persistence(&wide_threshold, "3-way threshold");
    assert!(msg.contains("must be exactly 2"), "{msg}");

    // The untouched rendering still loads, so every failure above came
    // from the mutation, not the fixture.
    load(&text).expect("the unmutated rendering loads");
}
