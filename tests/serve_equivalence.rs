//! The serving guarantee: `dq serve` answers byte-for-byte what the
//! in-memory batch auditor computes.
//!
//! A server is started on an ephemeral port over **two** persisted
//! models (loaded through the same `ModelRegistry::load_dir` path the
//! CLI uses), and several client threads interleave all three request
//! shapes — single record, micro-batch, streamed CSV — against both
//! models concurrently. Every response must equal the CSV that
//! `Auditor::detect` produces in memory for the same rows, literally:
//! the rendered bytes, and the finding confidences down to the `f64`
//! bit pattern (re-parsed from the response CSV and compared against
//! the in-memory report's bits — Rust float formatting is shortest
//! round-trip, so the bytes carry the full 64 bits).

use data_audit::prelude::*;
use data_audit::serve::{client, ModelRegistry, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A self-cleaning scratch directory (std-only).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let path = std::env::temp_dir().join(format!(
            "dq-serve-eq-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Two workspace-generated fixtures with distinct schemas.
fn fixtures() -> Vec<(&'static str, Table)> {
    let mixed = SchemaBuilder::new()
        .nominal("color", ["red", "green", "blue", "grey"])
        .nominal("shape", ["disc", "drum", "vent"])
        .numeric("size", 0.0, 100.0)
        .build()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(23);
    let tdg = TestDataGenerator::new(mixed, 8, 1500).generate(&mut rng);
    let (dirty, _) = pollute(&tdg.clean, &PollutionConfig::standard(), &mut rng);

    let ordered =
        SchemaBuilder::new().nominal("x", ["lo", "hi"]).numeric("n", 0.0, 100.0).build().unwrap();
    let mut t = Table::new(ordered);
    for i in 0..1000 {
        let (x, n) =
            if i % 2 == 0 { (0, 10.0 + (i % 9) as f64) } else { (1, 80.0 + (i % 9) as f64) };
        t.push_row(&[Value::Nominal(x), Value::Number(n)]).unwrap();
    }
    t.push_row(&[Value::Nominal(0), Value::Number(97.0)]).unwrap();

    vec![("tdg-mixed", dirty), ("ordered", t)]
}

/// The rows `[from, to)` of `table`, as their own table.
fn sub_table(table: &Table, from: usize, to: usize) -> Table {
    let mut out = Table::new(table.schema().clone());
    let mut record = Vec::new();
    for r in from..to {
        table.row_into(r, &mut record);
        out.push_row_lenient(&record).unwrap();
    }
    out
}

/// Everything a client thread needs to audit one model and check the
/// answers: request bodies paired with their expected 200 bodies.
struct ModelCase {
    name: &'static str,
    /// `(path_suffix, body, expected_response)` triples.
    exchanges: Vec<(String, Vec<u8>, String)>,
    /// Expected `f64` bit patterns of the full-stream report's finding
    /// confidences, for the bit-level comparison.
    stream_confidence_bits: Vec<u64>,
    /// The full-stream expected response (the CSV whose confidence
    /// column is re-parsed).
    stream_expected: String,
}

#[test]
fn concurrent_requests_match_in_memory_detect_byte_for_byte() {
    let dir = TempDir::new("models");
    let auditor = Auditor::default();
    let mut cases = Vec::new();

    for (name, table) in fixtures() {
        let schema = table.schema().clone();
        let model = auditor.induce(&table).unwrap();
        // Persist the pair the way `dq induce`/`dq generate` would.
        model.save_to_path(&schema, dir.0.join(format!("{name}.dqm"))).unwrap();
        let schema_file = std::fs::File::create(dir.0.join(format!("{name}.dqs"))).unwrap();
        write_schema(&schema, schema_file).unwrap();

        let mut csv = Vec::new();
        write_csv(&table, &mut csv).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&csv).unwrap().lines().collect();

        let mut exchanges = Vec::new();
        // Streamed CSV: the whole table, header included.
        let stream_report = auditor.detect(&model, &table);
        let stream_expected = stream_report.to_csv(&schema);
        exchanges.push(("stream".to_string(), csv.clone(), stream_expected.clone()));
        // Streamed CSV with corrections requested.
        exchanges.push((
            "stream?corrections=1".to_string(),
            csv.clone(),
            corrections_to_csv(&propose_corrections(&stream_report), &schema),
        ));
        // Micro-batches: two headerless windows (the last one spans the
        // deviant tail rows).
        let n = table.n_rows();
        for (from, to) in [(100, 160), (n - 40, n)] {
            let body = lines[1 + from..1 + to].join("\n") + "\n";
            let expected = auditor.detect(&model, &sub_table(&table, from, to)).to_csv(&schema);
            exchanges.push(("batch".to_string(), body.into_bytes(), expected));
        }
        // Single records, including the last (deviant) row.
        for row in [0, n / 2, n - 1] {
            let body = lines[1 + row].to_string();
            let expected = auditor.detect(&model, &sub_table(&table, row, row + 1)).to_csv(&schema);
            exchanges.push(("record".to_string(), body.into_bytes(), expected));
        }
        cases.push(ModelCase {
            name,
            exchanges,
            stream_confidence_bits: stream_report
                .findings
                .iter()
                .map(|f| f.confidence.to_bits())
                .collect(),
            stream_expected,
        });
    }

    let registry = ModelRegistry::load_dir(&dir.0).unwrap();
    assert_eq!(registry.len(), 2);
    let server = Server::bind("127.0.0.1:0", registry, ServeConfig::default()).unwrap();
    let addr = server.addr();
    let cases = Arc::new(cases);

    // Six client threads, each interleaving every shape against both
    // models, offset so different shapes are in flight simultaneously.
    std::thread::scope(|scope| {
        for client_id in 0..6usize {
            let cases = cases.clone();
            scope.spawn(move || {
                for round in 0..3usize {
                    for case in cases.iter() {
                        let k = case.exchanges.len();
                        for i in 0..k {
                            let (suffix, body, expected) =
                                &case.exchanges[(i + client_id + round) % k];
                            let path = format!("/audit/{}/{suffix}", case.name);
                            let resp = client::post(addr, &path, &[], body).unwrap();
                            assert_eq!(resp.status, 200, "{path}: {}", resp.body_str());
                            assert_eq!(
                                resp.body_str(),
                                expected,
                                "{path} (client {client_id} round {round})"
                            );
                        }
                    }
                }
            });
        }
    });

    // Bit-level check: the confidence column of the streamed response,
    // re-parsed, carries exactly the in-memory report's f64 bits.
    for case in cases.iter() {
        let resp = client::post(addr, &format!("/audit/{}/stream", case.name), &[], {
            let (_, body, _) = case.exchanges.iter().find(|(s, _, _)| s == "stream").unwrap();
            body
        })
        .unwrap();
        assert_eq!(resp.body_str(), case.stream_expected);
        let bits: Vec<u64> = resp
            .body_str()
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(4).unwrap().parse::<f64>().unwrap().to_bits())
            .collect();
        assert_eq!(bits, case.stream_confidence_bits, "model {}", case.name);
    }

    server.shutdown();
}
