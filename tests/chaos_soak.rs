//! The chaos soak: hundreds of seeded fault schedules against every
//! exposed layer, each run replayable from its seed alone.
//!
//! The invariant under test, everywhere: **loud or identical**. A run
//! wrapped in a [`FaultPlan`] either
//!
//! * completes with output byte-identical to the fault-free run
//!   (benign plans — `short`/`latency` — *must* land here), or
//! * fails with a typed error; injected hard failures name the exact
//!   fault line and stream position.
//!
//! What is never acceptable: a panic, a hang, or an `Ok` whose output
//! differs from the reference — silent truncation dressed as success.
//!
//! Every schedule is drawn from a fixed seed range, so a red run in CI
//! is a complete reproduction recipe. `DQ_CHAOS_SEED=<u64>` appends
//! one extra schedule per soak — the hook the CI chaos-smoke job uses
//! to add a fresh random seed to every run (printed on failure).

use data_audit::fault::{Fault, FaultKind, Unit};
use data_audit::prelude::*;
use data_audit::serve::{client, ModelRegistry, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufReader, Cursor, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A fixed seed range plus the optional `DQ_CHAOS_SEED` extra.
fn chaos_seeds(base: u64, n: u64) -> Vec<u64> {
    let mut seeds: Vec<u64> = (base..base + n).collect();
    if let Ok(s) = std::env::var("DQ_CHAOS_SEED") {
        seeds.push(s.parse().unwrap_or_else(|_| panic!("DQ_CHAOS_SEED must be a u64, got `{s}`")));
    }
    seeds
}

/// The soak relation: mixed nominal/numeric, enough rows that chunk
/// and page boundaries land mid-stream.
fn fixture() -> Table {
    let schema = SchemaBuilder::new()
        .nominal("flag", ["on", "off"])
        .nominal("kind", ["a", "b", "c"])
        .numeric("load", 0.0, 100.0)
        .build()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(2003);
    let mut t = Table::new(schema);
    for _ in 0..1000 {
        let f = rng.gen_range(0..2u32);
        let k = if f == 0 { 0 } else { rng.gen_range(1..3u32) };
        let load = if f == 0 { rng.gen_range(5.0..20.0) } else { rng.gen_range(60.0..90.0) };
        t.push_row(&[Value::Nominal(f), Value::Nominal(k), Value::Number(load)]).unwrap();
    }
    t
}

fn csv_bytes(table: &Table) -> Vec<u8> {
    let mut buf = Vec::new();
    write_csv(table, &mut buf).unwrap();
    buf
}

/// Row-range equality at the bit level (f64s compare by `to_bits`).
fn assert_rows_bit_equal(got: &Table, reference: &Table, rows: usize, context: &str) {
    assert!(rows <= reference.n_rows(), "{context}: {rows} rows exceeds the reference");
    for r in 0..rows {
        for c in 0..reference.n_cols() {
            match (got.get(r, c), reference.get(r, c)) {
                (Value::Number(x), Value::Number(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits(), "{context}: row {r} col {c}");
                }
                (x, y) => assert_eq!(x, y, "{context}: row {r} col {c}"),
            }
        }
    }
}

/// Drain a source without unwrapping: the accumulated prefix and the
/// terminal outcome.
fn drain(mut source: impl BatchSource) -> (Table, Result<(), String>) {
    let mut out = Table::new(source.schema().clone());
    loop {
        match source.next_batch() {
            Ok(Some(batch)) => {
                assert!(!batch.is_empty(), "batches must never be empty");
                out.append_rows(&batch).unwrap();
            }
            Ok(None) => return (out, Ok(())),
            Err(e) => return (out, Err(e.to_string())),
        }
    }
}

/// The earliest content-changing fault in `unit`, by anchor.
fn earliest_disruptive(plan: &FaultPlan, unit: Unit) -> Option<Fault> {
    plan.in_unit(unit).into_iter().find(|f| f.is_disruptive())
}

/// 120 seeded schedules against a [`FaultSource`]-wrapped pipeline
/// stage. Batch anchors are drawn below the emitted batch count, so
/// every disruptive schedule is guaranteed to trip — and must trip
/// loudly, after emitting only a bit-clean prefix.
#[test]
fn fault_source_soak_is_loud_or_identical() {
    let reference = fixture();
    let batch_rows = 64usize;
    let n_batches = reference.n_rows().div_ceil(batch_rows) as u64;
    let profile = FaultProfile { max_byte: 0, max_batch: n_batches, ..FaultProfile::default() };

    for seed in chaos_seeds(10_000, 120) {
        let plan = FaultPlan::seeded(seed, &profile);
        let context = format!("seed {seed}, plan:\n{}", plan.render());
        let source = FaultSource::new(reference.batches(batch_rows), &plan);
        let (prefix, outcome) = drain(source);

        // Whatever was emitted is a bit-clean prefix of the reference
        // — a fault may cut the stream, never corrupt it.
        assert_rows_bit_equal(&prefix, &reference, prefix.n_rows(), &context);
        match outcome {
            Ok(()) => {
                assert!(
                    !plan.disrupts_within(Unit::Batch, n_batches),
                    "{context}: a disruptive schedule completed silently"
                );
                assert_eq!(prefix.n_rows(), reference.n_rows(), "{context}");
            }
            Err(message) => {
                assert!(!plan.is_benign(), "{context}: a benign schedule failed with: {message}");
                assert!(
                    message.contains("injected fault:"),
                    "{context}: error does not name the fault: {message}"
                );
            }
        }
    }
}

/// 120 seeded schedules against the byte layer: CSV parsing through a
/// [`FaultRead`], with the out-of-band row count arming truncation
/// detection. Torn reads are honest early EOFs, so the *reader* must
/// turn them into typed errors — never a quietly shorter table.
#[test]
fn fault_read_csv_soak_is_loud_or_identical() {
    let reference = fixture();
    let bytes = csv_bytes(&reference);
    let len = bytes.len() as u64;
    let profile = FaultProfile { max_byte: len, max_batch: 0, ..FaultProfile::default() };

    for seed in chaos_seeds(20_000, 120) {
        let plan = FaultPlan::seeded(seed, &profile);
        let context = format!("seed {seed}, plan:\n{}", plan.render());
        let reader = BufReader::new(FaultRead::new(Cursor::new(bytes.clone()), &plan));
        let outcome = CsvChunkReader::new(reference.schema().clone(), reader, 97)
            .map(|r| r.with_expected_rows(reference.n_rows()))
            .map(drain);

        match outcome {
            Ok((prefix, Ok(()))) => {
                // Completion requires byte-identity — there is no such
                // thing as a successfully truncated run.
                assert_eq!(prefix.n_rows(), reference.n_rows(), "{context}");
                assert_rows_bit_equal(&prefix, &reference, reference.n_rows(), &context);
            }
            Ok((prefix, Err(message))) => {
                assert!(!plan.is_benign(), "{context}: benign schedule failed: {message}");
                // A tear mid-cell can leave one plausibly-parsed final
                // row (CSV has no checksums); every row before it must
                // be bit-clean, and the stream must have stopped short.
                assert!(prefix.n_rows() < reference.n_rows(), "{context}");
                let clean = prefix.n_rows().saturating_sub(1);
                assert_rows_bit_equal(&prefix, &reference, clean, &context);
                if let Some(f) = earliest_disruptive(&plan, Unit::Byte) {
                    if f.kind == FaultKind::Error {
                        assert!(
                            message.contains("injected fault:"),
                            "{context}: error does not name the fault: {message}"
                        );
                    }
                }
            }
            Err(construct) => {
                // Header reads can trip the fault too — fine, as long
                // as it is loud and the schedule could disrupt.
                assert!(
                    !plan.is_benign(),
                    "{context}: benign schedule failed at open: {construct}"
                );
            }
        }
        // Disruptive schedules must not complete: every anchor is
        // below the stream length, except a tear inside the final
        // newline, which loses no data.
        if let Some(f) = earliest_disruptive(&plan, Unit::Byte) {
            let harmless_tear = f.kind == FaultKind::Truncate && f.at >= len - 1;
            let completed = matches!(
                CsvChunkReader::new(
                    reference.schema().clone(),
                    BufReader::new(FaultRead::new(Cursor::new(bytes.clone()), &plan)),
                    97,
                )
                .map(|r| r.with_expected_rows(reference.n_rows()))
                .map(drain),
                Ok((_, Ok(())))
            );
            assert!(
                !completed || harmless_tear,
                "{context}: disruptive schedule completed silently"
            );
        }
    }
}

/// 60 seeded schedules against the write side: a [`FaultWrite`] tear
/// acknowledges bytes without persisting them — the page-cache crash
/// model — so the *reader* of the torn artifact must detect the tear
/// from framing. Round-trips every surviving artifact.
#[test]
fn fault_write_tears_are_detected_on_read_back() {
    let reference = fixture();
    let bytes = csv_bytes(&reference);
    let len = bytes.len() as u64;
    let profile = FaultProfile { max_byte: len, max_batch: 0, ..FaultProfile::default() };

    for seed in chaos_seeds(30_000, 60) {
        let plan = FaultPlan::seeded(seed, &profile);
        let context = format!("seed {seed}, plan:\n{}", plan.render());
        let mut writer = FaultWrite::new(Vec::new(), &plan);
        // Odd-sized chunks so op boundaries never align with anchors
        // by accident.
        let wrote = bytes.chunks(997).try_for_each(|c| writer.write_all(c));
        if let Err(e) = wrote {
            let message = e.to_string();
            assert!(!plan.is_benign(), "{context}: benign schedule failed: {message}");
            assert!(
                message.contains("injected fault:"),
                "{context}: write error does not name the fault: {message}"
            );
            continue;
        }
        let artifact = writer.into_inner();
        // The write "succeeded" — now the artifact must either be the
        // full file or a tear the reader catches via the expected row
        // count. Parsing it back is the detection path `dq detect`
        // uses on a spill.
        let outcome = CsvChunkReader::new(
            reference.schema().clone(),
            BufReader::new(Cursor::new(artifact.clone())),
            97,
        )
        .map(|r| r.with_expected_rows(reference.n_rows()))
        .map(drain);
        match outcome {
            Ok((prefix, Ok(()))) => {
                // Completes only when nothing (or only the trailing
                // newline) was lost: the parsed relation is identical.
                assert_eq!(prefix.n_rows(), reference.n_rows(), "{context}");
                assert_rows_bit_equal(&prefix, &reference, reference.n_rows(), &context);
            }
            Ok((_, Err(_))) | Err(_) => {
                assert!(
                    artifact.len() < bytes.len(),
                    "{context}: full artifact failed to parse back"
                );
            }
        }
    }
}

/// The daemon under chaos: concurrent clients posting clean streams
/// and torn bodies (prefixes cut by seeded write tears), then a drain.
/// Every request is answered, the server never panics, torn bodies
/// get typed `400`s exactly when a local parse of the same bytes
/// fails, new connections are refused with the *draining* `503` once
/// the drain begins — and `/stats` reconciles to the request exactly.
#[test]
fn daemon_chaos_soak_reconciles_stats_under_drain() {
    let table = fixture();
    let auditor = Auditor::default();
    let engine =
        data_audit::core::AuditEngine::new(auditor.induce(&table).unwrap(), table.schema().clone());
    let fingerprint = format!("{:016x}", engine.fingerprint());
    let mut registry = ModelRegistry::new();
    registry.insert("chaos", engine).unwrap();

    let server = Server::bind(
        "127.0.0.1:0",
        registry,
        ServeConfig { workers: 3, queue_depth: 64, ..ServeConfig::default() },
    )
    .unwrap();
    let addr = server.addr();
    let bytes = Arc::new(csv_bytes(&table));
    let table = Arc::new(table);

    let requests = AtomicU64::new(0);
    let records = AtomicU64::new(0);
    let errors = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for thread_id in 0..4u64 {
            let bytes = bytes.clone();
            let table = table.clone();
            let (requests, records, errors) = (&requests, &records, &errors);
            scope.spawn(move || {
                for i in 0..10u64 {
                    let seed = 40_000 + thread_id * 100 + i;
                    // Even iterations: the clean stream. Odd: a body
                    // torn by a seeded truncate fault.
                    let body: Vec<u8> = if i % 2 == 0 {
                        bytes.to_vec()
                    } else {
                        let profile = FaultProfile {
                            max_byte: bytes.len() as u64,
                            max_batch: 0,
                            max_faults: 1,
                            ..FaultProfile::default()
                        };
                        // Redraw until the schedule holds a tear (seeded
                        // → the redraw walk itself is replayable).
                        let mut s = seed;
                        let plan = loop {
                            let p = FaultPlan::seeded(s, &profile);
                            if p.faults.iter().any(|f| f.kind == FaultKind::Truncate) {
                                break p;
                            }
                            s += 1;
                        };
                        let mut w = FaultWrite::new(Vec::new(), &plan);
                        let _ = w.write_all(&bytes);
                        w.into_inner()
                    };
                    // The oracle: the server must agree with a local
                    // parse of the exact same bytes. No expected row
                    // count here — the server has no out-of-band count
                    // either, so a tear at a row boundary legitimately
                    // audits short (the CSV wire format cannot carry
                    // more truth than it frames).
                    let local = CsvChunkReader::new(
                        table.schema().clone(),
                        BufReader::new(Cursor::new(body.clone())),
                        97,
                    )
                    .map(drain);
                    let resp = client::post(addr, "/audit/chaos/stream", &[], &body)
                        .unwrap_or_else(|e| {
                            panic!("seed {seed}: request dropped: {e}");
                        });
                    requests.fetch_add(1, Ordering::Relaxed);
                    match local {
                        Ok((prefix, Ok(()))) => {
                            assert_eq!(resp.status, 200, "seed {seed}: {}", resp.body_str());
                            records.fetch_add(prefix.n_rows() as u64, Ordering::Relaxed);
                        }
                        _ => {
                            assert_eq!(resp.status, 400, "seed {seed}: {}", resp.body_str());
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    // Keep-alive connections opened *before* the drain: the server
    // keeps serving connections it already holds, which is how an
    // operator reads the final /stats off a draining server. Each one
    // is good for exactly one post-drain request — draining responses
    // force `Connection: close`.
    let mut health_conn = client::Connection::open(addr).unwrap();
    let mut stats_conn = client::Connection::open(addr).unwrap();
    // Warm both so a worker actually holds them (a connection still in
    // the accept backlog when the flag flips is refused, not held).
    for conn in [&mut health_conn, &mut stats_conn] {
        let warm = conn.request("GET", "/health", &[], b"").unwrap();
        assert_eq!(warm.status, 200);
    }

    // Drain: new connections are refused with the draining 503 (no
    // Retry-After — this server is not coming back) and the client
    // classifies it as terminal.
    server.begin_drain();
    let refused = client::post(addr, "/audit/chaos/stream", &[], &bytes).unwrap();
    assert_eq!(refused.status, 503, "{}", refused.body_str());
    assert_eq!(refused.unavailable(), Some(client::Unavailable::Draining));
    let health = health_conn.request("GET", "/health", &[], b"").unwrap();
    assert_eq!(health.status, 503);
    assert_eq!(health.body_str(), "draining\n");

    let stats = stats_conn.request("GET", "/stats", &[], b"").unwrap();
    assert_eq!(stats.status, 200);
    let line = stats
        .body_str()
        .lines()
        .find(|l| l.starts_with("chaos,"))
        .unwrap_or_else(|| panic!("no stats row for chaos:\n{}", stats.body_str()));
    let fields: Vec<&str> = line.split(',').collect();
    assert_eq!(fields[1], fingerprint, "{line}");
    assert_eq!(fields[2].parse::<u64>().unwrap(), requests.load(Ordering::Relaxed), "{line}");
    assert_eq!(fields[3].parse::<u64>().unwrap(), records.load(Ordering::Relaxed), "{line}");
    assert_eq!(fields[5].parse::<u64>().unwrap(), errors.load(Ordering::Relaxed), "{line}");

    server.shutdown();
}

/// The paged spill under byte chaos going *in*: a fault-wrapped
/// source spilled through [`PagedWriter`] either commits a complete,
/// reopenable relation or fails before committing — and the failed
/// directory is rejected at [`PagedTable::open`] with a typed error,
/// never reopened short.
#[test]
fn paged_spill_under_chaos_commits_fully_or_not_at_all() {
    let reference = fixture();
    let batch_rows = 64usize;
    let n_batches = reference.n_rows().div_ceil(batch_rows) as u64;
    let profile = FaultProfile { max_byte: 0, max_batch: n_batches, ..FaultProfile::default() };
    let dir = std::env::temp_dir().join(format!("dq-chaos-spill-{}", std::process::id()));

    for seed in chaos_seeds(50_000, 40) {
        let plan = FaultPlan::seeded(seed, &profile);
        let context = format!("seed {seed}, plan:\n{}", plan.render());
        let trial_dir = dir.join(format!("s{seed}"));
        let source = FaultSource::new(reference.batches(batch_rows), &plan);
        let spilled =
            PagedWriter::create(&trial_dir, reference.schema().clone(), 128).unwrap().spill(source);
        match spilled {
            Ok(paged) => {
                assert!(
                    !plan.disrupts_within(Unit::Batch, n_batches),
                    "{context}: disruptive schedule committed a spill"
                );
                assert_eq!(paged.n_rows(), reference.n_rows(), "{context}");
                let (copy, outcome) = drain(paged.batches());
                outcome.unwrap_or_else(|e| panic!("{context}: reopen failed: {e}"));
                assert_rows_bit_equal(&copy, &reference, reference.n_rows(), &context);
            }
            Err(e) => {
                assert!(!plan.is_benign(), "{context}: benign schedule failed: {e}");
                // The torn spill must be unopenable: no manifest was
                // ever committed.
                let reopened = PagedTable::open(&trial_dir, reference.schema().clone());
                assert!(reopened.is_err(), "{context}: a torn spill reopened");
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
