//! Soaking the audit daemon: randomized concurrent clients, hostile
//! inputs, and counter reconciliation.
//!
//! Eight client threads fire seeded-random interleaved requests at a
//! two-model server: valid records and micro-batches, malformed
//! records, streamed CSV bodies with a cell error planted mid-stream,
//! unknown model names, and schema-fingerprint mismatches. The daemon
//! must answer **every** request (a dropped response fails the
//! client's read), never panic, report the planted error's 1-based CSV
//! line verbatim in the `400` body, and — the reconciliation — the
//! `/stats` counters must equal exactly what the clients sent: no
//! request lost, no request double-counted.
//!
//! The registry's startup discipline rides along: two models persisted
//! over byte-identical schemas must be rejected at `load_dir` time
//! (fingerprint routing would be ambiguous), not at first request.

use data_audit::core::AuditEngine;
use data_audit::prelude::*;
use data_audit::serve::{client, ModelRegistry, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One model's worth of soak material: its name, its headerless CSV
/// record lines, its header line, its fingerprint.
struct SoakModel {
    name: &'static str,
    header: String,
    records: Vec<String>,
    fingerprint_hex: String,
}

/// Expected per-model counters, accumulated by the clients.
#[derive(Default)]
struct Expected {
    requests: AtomicU64,
    records: AtomicU64,
    errors: AtomicU64,
}

fn fixture(seed: u64, labels: [&'static str; 2]) -> Table {
    let schema = SchemaBuilder::new()
        .nominal("flag", labels)
        .nominal("kind", ["a", "b", "c"])
        .numeric("load", 0.0, 100.0)
        .build()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::new(schema);
    for _ in 0..600 {
        let f = rng.gen_range(0..2u32);
        let k = if f == 0 { 0 } else { rng.gen_range(1..3u32) };
        let load = if f == 0 { rng.gen_range(5.0..20.0) } else { rng.gen_range(60.0..90.0) };
        t.push_row(&[Value::Nominal(f), Value::Nominal(k), Value::Number(load)]).unwrap();
    }
    t
}

/// The two-model soak registry plus per-model request material.
fn soak_models() -> (ModelRegistry, Vec<SoakModel>) {
    let auditor = Auditor::default();
    let mut registry = ModelRegistry::new();
    let mut models = Vec::new();
    for (name, seed, labels) in [("alpha", 7u64, ["on", "off"]), ("beta", 11u64, ["hot", "cold"])] {
        let table = fixture(seed, labels);
        let engine = AuditEngine::new(auditor.induce(&table).unwrap(), table.schema().clone());
        let mut csv = Vec::new();
        write_csv(&table, &mut csv).unwrap();
        let mut lines = std::str::from_utf8(&csv).unwrap().lines().map(str::to_string);
        let header = lines.next().unwrap();
        models.push(SoakModel {
            name,
            header,
            records: lines.collect(),
            fingerprint_hex: format!("{:016x}", engine.fingerprint()),
        });
        registry.insert(name, engine).unwrap();
    }
    (registry, models)
}

/// Reconcile `/stats` against client-side tallies: every counter must
/// match exactly — no request lost, none double-counted.
fn reconcile_stats(addr: std::net::SocketAddr, models: &[SoakModel], expected: &[Expected]) {
    let stats = client::get(addr, "/stats").unwrap();
    assert_eq!(stats.status, 200);
    for (m, model) in models.iter().enumerate() {
        let line = stats
            .body_str()
            .lines()
            .find(|l| l.starts_with(&format!("{},", model.name)))
            .unwrap_or_else(|| panic!("no stats row for {}:\n{}", model.name, stats.body_str()));
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields[1], model.fingerprint_hex, "{line}");
        assert_eq!(
            fields[2].parse::<u64>().unwrap(),
            expected[m].requests.load(Ordering::Relaxed),
            "requests of {}: {line}",
            model.name
        );
        assert_eq!(
            fields[3].parse::<u64>().unwrap(),
            expected[m].records.load(Ordering::Relaxed),
            "records of {}: {line}",
            model.name
        );
        assert_eq!(
            fields[5].parse::<u64>().unwrap(),
            expected[m].errors.load(Ordering::Relaxed),
            "errors of {}: {line}",
            model.name
        );
    }
}

#[test]
fn eight_randomized_clients_lose_nothing() {
    let (registry, models) = soak_models();

    let server = Server::bind(
        "127.0.0.1:0",
        registry,
        ServeConfig { workers: 4, queue_depth: 64, ..ServeConfig::default() },
    )
    .unwrap();
    let addr = server.addr();
    let models = Arc::new(models);
    let expected: Arc<Vec<Expected>> =
        Arc::new(models.iter().map(|_| Expected::default()).collect());

    std::thread::scope(|scope| {
        for thread_id in 0..8u64 {
            let models = models.clone();
            let expected = expected.clone();
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(1000 + thread_id);
                for _ in 0..40 {
                    let m = rng.gen_range(0..models.len());
                    let model = &models[m];
                    let tally = &expected[m];
                    match rng.gen_range(0..6u32) {
                        // A valid single record.
                        0 => {
                            let row = rng.gen_range(0..model.records.len());
                            let resp = client::post(
                                addr,
                                &format!("/audit/{}/record", model.name),
                                &[],
                                model.records[row].as_bytes(),
                            )
                            .unwrap();
                            assert_eq!(resp.status, 200, "{}", resp.body_str());
                            tally.requests.fetch_add(1, Ordering::Relaxed);
                            tally.records.fetch_add(1, Ordering::Relaxed);
                        }
                        // A valid micro-batch.
                        1 => {
                            let from = rng.gen_range(0..model.records.len() - 30);
                            let len = rng.gen_range(1..30usize);
                            let body = model.records[from..from + len].join("\n") + "\n";
                            let resp = client::post(
                                addr,
                                &format!("/audit/{}/batch", model.name),
                                &[],
                                body.as_bytes(),
                            )
                            .unwrap();
                            assert_eq!(resp.status, 200, "{}", resp.body_str());
                            tally.requests.fetch_add(1, Ordering::Relaxed);
                            tally.records.fetch_add(len as u64, Ordering::Relaxed);
                        }
                        // A malformed record: the numeric cell is garbage.
                        // The implied header of the record endpoint is
                        // line 1, so the planted error is at line 2.
                        2 => {
                            let row = rng.gen_range(0..model.records.len());
                            let mut cells: Vec<&str> = model.records[row].split(',').collect();
                            cells[2] = "zap";
                            let resp = client::post(
                                addr,
                                &format!("/audit/{}/record", model.name),
                                &[],
                                cells.join(",").as_bytes(),
                            )
                            .unwrap();
                            assert_eq!(resp.status, 400, "{}", resp.body_str());
                            assert!(
                                resp.body_str().contains("line 2, column `load`"),
                                "{}",
                                resp.body_str()
                            );
                            tally.requests.fetch_add(1, Ordering::Relaxed);
                            tally.errors.fetch_add(1, Ordering::Relaxed);
                        }
                        // A streamed CSV with a cell error planted
                        // mid-stream: record k (0-based) sits at
                        // physical line k + 2 (the header is line 1).
                        3 => {
                            let n = rng.gen_range(20..60usize);
                            let bad = rng.gen_range(5..n);
                            let mut body = model.header.clone();
                            for (k, record) in model.records[..n].iter().enumerate() {
                                body.push('\n');
                                if k == bad {
                                    let mut cells: Vec<&str> = record.split(',').collect();
                                    cells[2] = "boom";
                                    body.push_str(&cells.join(","));
                                } else {
                                    body.push_str(record);
                                }
                            }
                            body.push('\n');
                            let resp = client::post(
                                addr,
                                &format!("/audit/{}/stream", model.name),
                                &[],
                                body.as_bytes(),
                            )
                            .unwrap();
                            assert_eq!(resp.status, 400, "{}", resp.body_str());
                            let wanted = format!("line {}, column `load`", bad + 2);
                            assert!(
                                resp.body_str().contains(&wanted),
                                "wanted `{wanted}` in `{}`",
                                resp.body_str()
                            );
                            tally.requests.fetch_add(1, Ordering::Relaxed);
                            tally.errors.fetch_add(1, Ordering::Relaxed);
                        }
                        // An unknown model: typed 404, resolves no model.
                        4 => {
                            let resp =
                                client::post(addr, "/audit/no-such-model/record", &[], b"on,a,10")
                                    .unwrap();
                            assert_eq!(resp.status, 404);
                            assert!(
                                resp.body_str().contains("unknown model `no-such-model`"),
                                "{}",
                                resp.body_str()
                            );
                        }
                        // A schema-fingerprint mismatch: the *other*
                        // model's fingerprint is asserted.
                        _ => {
                            let other = &models[(m + 1) % models.len()];
                            let row = rng.gen_range(0..model.records.len());
                            let resp = client::post(
                                addr,
                                &format!("/audit/{}/record", model.name),
                                &[("X-Schema-Fingerprint", other.fingerprint_hex.as_str())],
                                model.records[row].as_bytes(),
                            )
                            .unwrap();
                            assert_eq!(resp.status, 409, "{}", resp.body_str());
                            assert!(
                                resp.body_str().contains("schema fingerprint mismatch"),
                                "{}",
                                resp.body_str()
                            );
                            assert!(
                                resp.body_str().contains(&model.fingerprint_hex)
                                    && resp.body_str().contains(&other.fingerprint_hex),
                                "{}",
                                resp.body_str()
                            );
                            tally.requests.fetch_add(1, Ordering::Relaxed);
                            tally.errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    // Reconciliation: the daemon's counters are exactly the clients'.
    reconcile_stats(addr, &models[..], &expected[..]);

    server.shutdown();
}

/// Keep-alive soak: every client rides ONE TCP connection for its
/// whole battery, pipelining bursts of requests (all written before
/// any response is read) and then draining the responses in order.
/// The final request of each client says `Connection: close` and the
/// server must actually hang up. `/stats` must reconcile exactly, so
/// no pipelined request may be lost or answered twice.
#[test]
fn pipelined_keepalive_clients_reconcile_exactly() {
    let (registry, models) = soak_models();
    let server = Server::bind(
        "127.0.0.1:0",
        registry,
        ServeConfig { workers: 4, queue_depth: 64, ..ServeConfig::default() },
    )
    .unwrap();
    let addr = server.addr();
    let models = Arc::new(models);
    let expected: Arc<Vec<Expected>> =
        Arc::new(models.iter().map(|_| Expected::default()).collect());

    std::thread::scope(|scope| {
        for thread_id in 0..6u64 {
            let models = models.clone();
            let expected = expected.clone();
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(9000 + thread_id);
                let mut conn = client::Connection::open(addr).unwrap();
                for _burst in 0..5 {
                    // Pipeline a burst: send every request up front…
                    let k = rng.gen_range(2..8usize);
                    let mut sent: Vec<(usize, u16, u64)> = Vec::new(); // (model, status, records)
                    for _ in 0..k {
                        let m = rng.gen_range(0..models.len());
                        let model = &models[m];
                        match rng.gen_range(0..3u32) {
                            0 => {
                                let row = rng.gen_range(0..model.records.len());
                                conn.send(
                                    "POST",
                                    &format!("/audit/{}/record", model.name),
                                    &[],
                                    model.records[row].as_bytes(),
                                )
                                .unwrap();
                                sent.push((m, 200, 1));
                            }
                            1 => {
                                let from = rng.gen_range(0..model.records.len() - 30);
                                let len = rng.gen_range(1..30usize);
                                let body = model.records[from..from + len].join("\n") + "\n";
                                conn.send(
                                    "POST",
                                    &format!("/audit/{}/batch", model.name),
                                    &[],
                                    body.as_bytes(),
                                )
                                .unwrap();
                                sent.push((m, 200, len as u64));
                            }
                            _ => {
                                let other = &models[(m + 1) % models.len()];
                                let row = rng.gen_range(0..model.records.len());
                                conn.send(
                                    "POST",
                                    &format!("/audit/{}/record", model.name),
                                    &[("X-Schema-Fingerprint", other.fingerprint_hex.as_str())],
                                    model.records[row].as_bytes(),
                                )
                                .unwrap();
                                sent.push((m, 409, 0));
                            }
                        }
                    }
                    // …then drain the responses, strictly in order.
                    for (m, status, records) in sent {
                        let resp = conn.recv().unwrap();
                        assert_eq!(resp.status, status, "{}", resp.body_str());
                        let tally = &expected[m];
                        tally.requests.fetch_add(1, Ordering::Relaxed);
                        tally.records.fetch_add(records, Ordering::Relaxed);
                        if status != 200 {
                            tally.errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                // The goodbye: a Connection: close request is answered,
                // then the server hangs up — a further read sees EOF.
                let m = rng.gen_range(0..models.len());
                let model = &models[m];
                let row = rng.gen_range(0..model.records.len());
                conn.send_close(
                    "POST",
                    &format!("/audit/{}/record", model.name),
                    &[],
                    model.records[row].as_bytes(),
                )
                .unwrap();
                let resp = conn.recv().unwrap();
                assert_eq!(resp.status, 200, "{}", resp.body_str());
                let tally = &expected[m];
                tally.requests.fetch_add(1, Ordering::Relaxed);
                tally.records.fetch_add(1, Ordering::Relaxed);
                assert!(
                    conn.recv().is_err(),
                    "server must close the connection after Connection: close"
                );
            });
        }
    });

    reconcile_stats(addr, &models[..], &expected[..]);
    server.shutdown();
}

#[test]
fn load_dir_rejects_duplicate_schema_fingerprints() {
    let dir = std::env::temp_dir().join(format!("dq-serve-soak-dup-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let auditor = Auditor::default();
    // Two models persisted over byte-identical schemas: the second
    // load must fail with the fingerprint collision, at startup.
    for name in ["a", "b"] {
        let table = fixture(5, ["on", "off"]);
        let model = auditor.induce(&table).unwrap();
        model.save_to_path(table.schema(), dir.join(format!("{name}.dqm"))).unwrap();
        let schema_file = std::fs::File::create(dir.join(format!("{name}.dqs"))).unwrap();
        write_schema(table.schema(), schema_file).unwrap();
    }
    let err = ModelRegistry::load_dir(&dir).unwrap_err();
    let text = err.to_string();
    assert!(text.contains("collides with model `a`") && text.contains("fingerprint"), "{text}");
    // A model whose schema pair is missing is a startup error too.
    std::fs::remove_file(dir.join("b.dqs")).unwrap();
    let err = ModelRegistry::load_dir(&dir).unwrap_err();
    assert!(err.to_string().contains("b.dqs"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
