//! Property-based cross-crate invariants: whatever the generator,
//! polluter and auditor are parameterized with, the contracts between
//! the stages must hold.

use data_audit::logic::eval::violations;
use data_audit::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn small_schema(nominal_cards: &[usize], with_numeric: bool) -> Arc<Schema> {
    let mut b = SchemaBuilder::new();
    for (i, &card) in nominal_cards.iter().enumerate() {
        b = b.nominal_sized(&format!("n{i}"), card);
    }
    if with_numeric {
        b = b.numeric("x", 0.0, 100.0);
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Generated data follows every generated rule (up to the reported
    /// unresolved violations, which must match exactly).
    #[test]
    fn generated_data_follows_rules(
        seed in 0u64..5000,
        n_rules in 0usize..12,
        rows in 50usize..300,
        card in 3usize..6,
    ) {
        let schema = small_schema(&[card, card, card + 1], true);
        let generator = TestDataGenerator::new(schema, n_rules, rows);
        let mut rng = StdRng::seed_from_u64(seed);
        let b = generator.generate(&mut rng);
        let total: usize = b.rules.iter().map(|r| violations(r, &b.clean).len()).sum();
        prop_assert_eq!(total as u64, b.gen_report.unresolved_violations);
        prop_assert_eq!(b.clean.n_rows(), rows);
    }

    /// The pollution log is exactly the diff between clean and dirty
    /// tables (for non-deleted rows), and prevalence accounting holds.
    #[test]
    fn pollution_log_is_the_diff(
        seed in 0u64..5000,
        factor in 0.5f64..6.0,
        rows in 50usize..250,
    ) {
        let schema = small_schema(&[4, 3], true);
        let generator = TestDataGenerator::new(schema, 3, rows);
        let mut rng = StdRng::seed_from_u64(seed);
        let b = generator.generate(&mut rng);
        let cfg = PollutionConfig::standard().with_factor(factor);
        let (dirty, log) = pollute(&b.clean, &cfg, &mut rng);
        prop_assert_eq!(log.n_rows(), dirty.n_rows());
        for (dr, prov) in log.provenance.iter().enumerate() {
            for a in 0..dirty.n_cols() {
                let c = b.clean.get(prov.clean_row, a);
                let d = dirty.get(dr, a);
                let differs =
                    c.sql_eq(&d) != Some(true) && !(c.is_null() && d.is_null());
                prop_assert_eq!(differs, log.is_cell_corrupted(dr, a));
            }
        }
        // Deletions + survivors account for every clean row.
        let survivors: std::collections::HashSet<usize> =
            log.provenance.iter().filter(|p| !p.duplicate).map(|p| p.clean_row).collect();
        prop_assert_eq!(survivors.len() + log.deleted_clean_rows.len(), rows);
    }

    /// The audit report is structurally sound on arbitrary dirty data:
    /// confidences in [0, 1], findings above threshold, flagging
    /// consistent.
    #[test]
    fn audit_report_invariants(
        seed in 0u64..5000,
        rows in 60usize..250,
    ) {
        let schema = small_schema(&[4, 4, 3], false);
        let generator = TestDataGenerator::new(schema, 4, rows);
        let mut rng = StdRng::seed_from_u64(seed);
        let b = generator.generate(&mut rng);
        let (dirty, _) = pollute(&b.clean, &PollutionConfig::standard(), &mut rng);
        let (model, report) = Auditor::default().run(&dirty).unwrap();
        prop_assert!(model.min_inst > 0.0);
        prop_assert_eq!(report.n_rows(), dirty.n_rows());
        for row in 0..report.n_rows() {
            let c = report.record_confidence[row];
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert_eq!(report.is_flagged(row), c >= report.min_confidence);
        }
        for f in &report.findings {
            prop_assert!(f.confidence >= report.min_confidence);
            prop_assert!(f.support > 0.0);
            prop_assert!(f.attr < dirty.n_cols());
            prop_assert!(f.row < dirty.n_rows());
        }
        // Findings are sorted by descending confidence.
        for w in report.findings.windows(2) {
            prop_assert!(w[0].confidence >= w[1].confidence);
        }
    }

    /// Rendering and re-parsing a rule is the identity (modulo
    /// whitespace): the parser accepts everything the renderer emits.
    #[test]
    fn rule_render_parse_round_trip(
        seed in 0u64..5000,
        n_rules in 1usize..10,
    ) {
        let schema = small_schema(&[4, 4, 5], true);
        let generator = TestDataGenerator::new(schema.clone(), n_rules, 10);
        let mut rng = StdRng::seed_from_u64(seed);
        let b = generator.generate(&mut rng);
        for rule in &b.rules {
            let text = rule.render(&schema);
            let parsed = parse_rule(&schema, &text)
                .unwrap_or_else(|e| panic!("re-parsing `{text}`: {e}"));
            prop_assert_eq!(&parsed, rule, "{}", text);
        }
    }
}
