//! Serial/parallel equivalence of the audit pipeline.
//!
//! Determinism is a paper-level requirement: the evaluation scores
//! detections against the ground-truth pollution log, so the parallel
//! engine must produce *exactly* the results of the legacy serial
//! path — identical structure-model rules and byte-identical audit
//! reports (detections, confidences, corrections) at every thread
//! count. These tests pin that contract on several generated and
//! polluted tables.

use data_audit::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A generated, polluted table of the given shape.
fn dirty_table(schema: Arc<Schema>, n_rules: usize, n_rows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let benchmark = TestDataGenerator::new(schema, n_rules, n_rows).generate(&mut rng);
    let (dirty, _log) = pollute(&benchmark.clean, &PollutionConfig::standard(), &mut rng);
    dirty
}

/// The benchmark shapes the suite sweeps: nominal-only, mixed
/// nominal/numeric/date, and a near-degenerate two-column table.
fn fixtures() -> Vec<Table> {
    let nominal = SchemaBuilder::new()
        .nominal("a", ["v1", "v2", "v3", "v4"])
        .nominal("b", ["w1", "w2", "w3"])
        .nominal("c", ["x1", "x2", "x3", "x4", "x5"])
        .build()
        .unwrap();
    let mixed = SchemaBuilder::new()
        .nominal("color", ["red", "green", "blue", "grey"])
        .nominal("shape", ["disc", "drum", "vent"])
        .numeric("size", 0.0, 100.0)
        .date_ymd("built", (1999, 1, 1), (2003, 12, 31))
        .build()
        .unwrap();
    let narrow = SchemaBuilder::new()
        .nominal("k", ["on", "off"])
        .nominal("v", ["hi", "lo", "mid"])
        .build()
        .unwrap();
    vec![
        dirty_table(nominal, 8, 1500, 31),
        dirty_table(mixed, 12, 2000, 32),
        dirty_table(narrow, 3, 900, 33),
    ]
}

fn auditor_with(threads: impl Into<dq_exec::Parallelism>) -> Auditor {
    Auditor::new(AuditConfig { threads: threads.into(), ..AuditConfig::default() })
}

/// Byte-level equality for f64 sequences (`==` would also accept
/// -0.0/0.0 confusions; the contract is *byte-identical*).
fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: index {i} ({x} vs {y})");
    }
}

#[test]
fn structure_models_are_identical_across_thread_counts() {
    for (i, table) in fixtures().iter().enumerate() {
        let serial_model = auditor_with(Some(1)).induce(table).unwrap();
        for threads in [2, 4] {
            let parallel_model = auditor_with(Some(threads)).induce(table).unwrap();
            assert_eq!(
                parallel_model.models.len(),
                serial_model.models.len(),
                "fixture {i}, threads {threads}"
            );
            assert_eq!(parallel_model.min_inst, serial_model.min_inst);
            for (mp, ms) in parallel_model.models.iter().zip(&serial_model.models) {
                assert_eq!(mp.class_attr, ms.class_attr);
                assert_eq!(mp.rules, ms.rules, "fixture {i}, attr {}", ms.class_attr);
                assert_eq!(mp.deleted_rules, ms.deleted_rules);
                assert_eq!(mp.classifier.describe(), ms.classifier.describe());
            }
            // The rendered probabilistic integrity constraints agree
            // byte for byte.
            assert_eq!(parallel_model.render(table.schema()), serial_model.render(table.schema()));
        }
    }
}

#[test]
fn audit_reports_are_byte_identical_across_thread_counts() {
    for (i, table) in fixtures().iter().enumerate() {
        let (serial_model, serial_report) = auditor_with(Some(1)).run(table).unwrap();
        for threads in [2, 4] {
            let report = auditor_with(Some(threads)).detect(&serial_model, table);
            assert_eq!(report.findings.len(), serial_report.findings.len(), "fixture {i}");
            for (fp, fs) in report.findings.iter().zip(&serial_report.findings) {
                assert_eq!((fp.row, fp.attr), (fs.row, fs.attr), "fixture {i}");
                assert_eq!(fp.observed, fs.observed);
                assert_eq!(fp.proposed, fs.proposed);
                assert_eq!(fp.confidence.to_bits(), fs.confidence.to_bits());
                assert_eq!(fp.support.to_bits(), fs.support.to_bits());
            }
            assert_bits_eq(
                &report.record_confidence,
                &serial_report.record_confidence,
                &format!("fixture {i}, threads {threads}"),
            );
            // Proposed corrections derive from the findings and agree too.
            let serial_fixes = propose_corrections(&serial_report);
            let parallel_fixes = propose_corrections(&report);
            assert_eq!(parallel_fixes, serial_fixes, "fixture {i}, threads {threads}");
        }
    }
}

#[test]
fn full_parallel_run_equals_full_serial_run() {
    // End to end: parallel induction feeding parallel detection equals
    // the all-serial pipeline (not just mixed combinations).
    for table in fixtures() {
        let (_, serial_report) = auditor_with(Some(1)).run(&table).unwrap();
        let (_, parallel_report) = auditor_with(Some(4)).run(&table).unwrap();
        assert_eq!(parallel_report.findings, serial_report.findings);
        assert_bits_eq(
            &parallel_report.record_confidence,
            &serial_report.record_confidence,
            "full run",
        );
        assert_eq!(parallel_report.n_suspicious(), serial_report.n_suspicious());
    }
}

#[test]
fn default_thread_resolution_matches_serial_results() {
    // Whatever `None` resolves to on this machine (hardware threads or
    // `DQ_THREADS`), the results must equal the serial path — the
    // guarantee CI exercises by running the suite under both settings.
    let table = &fixtures()[1];
    let (_, serial) = auditor_with(Some(1)).run(table).unwrap();
    let (_, auto) = auditor_with(None).run(table).unwrap();
    assert_eq!(auto.findings, serial.findings);
    assert_bits_eq(&auto.record_confidence, &serial.record_confidence, "auto threads");
}
