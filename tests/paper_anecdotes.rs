//! The concrete numbers the paper reports, end-to-end through the
//! public API: the QUIS example rules and their error confidences
//! (sec. 6.2), and the error-confidence motivation examples
//! (sec. 5.2).

use data_audit::prelude::*;
use data_audit::quis::{attr, engine_schema, generate_quis, QuisConfig};
use data_audit::stats;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Build the exact table behind the paper's two example rules:
/// `BRV = 404 → GBM = 901` on 16118 instances (one deviating) and
/// `KBM = 01 ∧ GBM = 901 → BRV = 501` on 9530 instances (one deviating).
fn paper_table() -> Table {
    let schema = engine_schema();
    let brv404 = 3u32;
    let brv501 = 5u32;
    let brv601 = 7u32;
    let gbm901 = 0u32;
    let gbm911 = 3u32;
    let gbm921 = 5u32;
    let kbm01 = 0u32;
    let kbm02 = 1u32;
    let kbm03 = 2u32;
    let mut t = Table::new(schema);
    let mut push = |brv: u32, gbm: u32, kbm: u32| {
        let rec = vec![
            Value::Nominal(brv),
            Value::Nominal(gbm),
            Value::Nominal(kbm),
            Value::Nominal(0),
            Value::Nominal(0),
            Value::Nominal(1),
            Value::Number(2000.0),
            Value::Date(9500),
        ];
        t.push_row(&rec).unwrap();
    };
    // The 404 family (GBM always 901, KBM varies over 02/03 so the
    // GBM tree cannot learn the dependency through KBM instead).
    for i in 0..16_117 {
        push(brv404, gbm901, if i % 2 == 0 { kbm02 } else { kbm03 });
    }
    // The famous deviation: BRV 404 with GBM 911.
    push(brv404, gbm911, kbm02);
    // The 501 family: KBM 01 ∧ GBM 901 ⇒ BRV 501.
    for _ in 0..9_529 {
        push(brv501, gbm901, kbm01);
    }
    // A second deviation for that rule: KBM 01 ∧ GBM 901 with BRV 404.
    push(brv404, gbm901, kbm01);
    // A third family so GBM actually varies (KBM overlaps the others).
    for i in 0..2_000 {
        push(brv601, gbm921, if i % 2 == 0 { kbm01 } else { kbm02 });
    }
    t
}

#[test]
fn quis_example_rules_score_the_paper_confidences() {
    let t = paper_table();
    let auditor = Auditor::default();
    let (model, report) = auditor.run(&t).unwrap();

    // "BRV = 404 → GBM = 901 … based on 16118 instances. One instance,
    // however, contradicts the rule … error confidence of 99,95% …
    // ranks it first in the sorted list of suspicious records."
    let gbm_deviant = 16_117;
    assert!(report.is_flagged(gbm_deviant));
    assert!(
        report.record_confidence[gbm_deviant] > 0.999,
        "got {}",
        report.record_confidence[gbm_deviant]
    );
    assert_eq!(report.findings[0].row, gbm_deviant, "must rank first");

    // "KBM = 01 ∧ GBM = 901 → BRV = 501 … relies on 9530 records,
    // results in a lower confidence measure" — lower than the first,
    // still above the 80% reporting bar.
    let brv_deviant = 16_117 + 1 + 9_529; // appended after the 501 family
    assert!(report.is_flagged(brv_deviant));
    let c = report.record_confidence[brv_deviant];
    assert!(c > 0.9 && c < report.record_confidence[gbm_deviant], "got {c}");

    // Both dependencies appear in the structure model.
    let rendered = model.render(t.schema());
    assert!(rendered.contains("brv = 404 → gbm = 901"), "model:\n{rendered}");
    assert!(
        rendered.contains("kbm = 01 → brv = 501") || rendered.contains("→ brv = 501"),
        "model:\n{rendered}"
    );
}

#[test]
fn error_confidence_prefers_the_papers_orderings() {
    // Sec. 5.2's two motivating pairs, through the public stats API.
    let n = 1000.0;
    let scale = |ps: &[f64]| ps.iter().map(|p| p * n).collect::<Vec<_>>();
    // 1 − P(c) fails on: P1 vs P2, class 0 observed.
    let p1 = scale(&[0.2, 0.2, 0.2, 0.1, 0.3]);
    let p2 = scale(&[0.2, 0.8, 0.0, 0.0, 0.0]);
    assert!(
        stats::error_confidence(&p2, 0, 0.95) > stats::error_confidence(&p1, 0, 0.95),
        "the error must be more apparent in the concentrated distribution"
    );
    // P(ĉ) alone fails on: Q1 vs Q2, class 0 observed.
    let q1 = scale(&[0.0, 0.1, 0.9]);
    let q2 = scale(&[0.1, 0.0, 0.9]);
    assert!(stats::error_confidence(&q1, 0, 0.95) > stats::error_confidence(&q2, 0, 0.95));
}

#[test]
fn synthetic_quis_audit_reproduces_the_62_figures() {
    // Scaled-down sec. 6.2: the suspicious-record share and the
    // top-ranked findings' verifiability.
    let mut rng = StdRng::seed_from_u64(62);
    let bench = generate_quis(&QuisConfig::default().with_rows(30_000), &mut rng);
    let auditor = Auditor::default();
    let (model, report) = auditor.run(&bench.dirty).unwrap();
    // The paper flags ~3% of records; allow a generous band.
    let share = report.n_suspicious() as f64 / bench.dirty.n_rows() as f64;
    assert!((0.005..0.10).contains(&share), "suspicious share {share}");
    // Top findings are overwhelmingly true errors.
    let top = report.top(20);
    let hits = top.iter().filter(|f| bench.log.is_row_corrupted(f.row)).count();
    assert!(hits * 10 >= top.len() * 7, "top-20 precision {hits}/20");
    // The engineered dependencies are rediscovered.
    let rendered = model.render(bench.dirty.schema());
    assert!(rendered.contains("→ gbm = 901") || rendered.contains("brv = 404"));
    // Power class is derivable from displacement: the model must carry
    // rules predicting `power`.
    assert!(model.models[attr::POWER].rules.len() > 1, "power-class structure missing");
}
