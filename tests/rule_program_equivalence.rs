//! Property suite pinning the compiled rule-program layer to the
//! interpreter: for random natural formulae/rules and random records —
//! including NULLs and out-of-label `#<code>` nominal cells — the flat
//! branch programs of `dq_logic::program` must agree with
//! `eval_formula`/`eval_rule` verdict for verdict.

use data_audit::logic::eval::{eval_formula, eval_rule, violations, violations_reference};
use data_audit::logic::{CompiledFormula, CompiledRuleSet, RuleProgram, RuleStatus};
use data_audit::prelude::*;
use data_audit::tdg::{AtomSampler, AtomWeights, FormulaShape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A schema exercising every attribute kind the logic knows.
fn mixed_schema(cards: (usize, usize)) -> Arc<Schema> {
    SchemaBuilder::new()
        .nominal_sized("a", cards.0)
        .nominal_sized("b", cards.0)
        .nominal_sized("c", cards.1)
        .numeric("x", 0.0, 100.0)
        .integer("k", 0.0, 20.0)
        .date_ymd("d", (2000, 1, 1), (2005, 12, 31))
        .build()
        .unwrap()
}

/// A random record over `schema`: kind-correct cells, with NULLs and —
/// for nominal attributes — occasional out-of-label codes (what
/// switcher/wrong-value pollution leaves behind).
fn random_record<R: rand::Rng + ?Sized>(schema: &Schema, rng: &mut R) -> Vec<Value> {
    schema
        .attributes()
        .iter()
        .map(|attr| {
            if rng.gen_bool(0.15) {
                return Value::Null;
            }
            match &attr.ty {
                AttrType::Nominal { labels } => {
                    if rng.gen_bool(0.1) {
                        // Out-of-label code (dirty data is representable).
                        Value::Nominal(labels.len() as u32 + rng.gen_range(0..3u32))
                    } else {
                        Value::Nominal(rng.gen_range(0..labels.len() as u32))
                    }
                }
                AttrType::Numeric { min, max, integer } => {
                    let x = rng.gen_range(*min..=*max);
                    Value::Number(if *integer { x.round() } else { x })
                }
                AttrType::Date { min, max } => Value::Date(rng.gen_range(*min..=*max)),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Compiled formula programs agree with the interpreter on random
    /// natural formulae × random records.
    #[test]
    fn compiled_formula_matches_interpreter(
        seed in 0u64..10_000,
        card in 3usize..6,
        max_atoms in 1usize..5,
        p_disjunction in 0.0f64..0.9,
    ) {
        let schema = mixed_schema((card, card + 2));
        let mut rng = StdRng::seed_from_u64(seed);
        let sampler = AtomSampler::new(&schema, AtomWeights::default());
        let shape = FormulaShape { min_atoms: 1, max_atoms, p_disjunction };
        for _ in 0..8 {
            let formula = sampler.sample_formula(&schema, &shape, &mut rng);
            let compiled = CompiledFormula::compile(&formula);
            for _ in 0..40 {
                let record = random_record(&schema, &mut rng);
                prop_assert_eq!(
                    compiled.eval(&record),
                    eval_formula(&formula, &record),
                    "formula {} on {:?}",
                    formula,
                    record
                );
            }
        }
    }

    /// Rule programs and the compiled rule set agree with `eval_rule`,
    /// and the compiled violation scan agrees with the retained
    /// interpreted scan.
    #[test]
    fn compiled_rules_match_interpreter(
        seed in 0u64..10_000,
        card in 3usize..6,
    ) {
        let schema = mixed_schema((card, card + 1));
        let mut rng = StdRng::seed_from_u64(seed);
        let sampler = AtomSampler::new(&schema, AtomWeights::default());
        let premise_shape = FormulaShape { min_atoms: 1, max_atoms: 3, p_disjunction: 0.2 };
        let consequent_shape = FormulaShape { min_atoms: 1, max_atoms: 2, p_disjunction: 0.3 };
        let rules: Vec<Rule> = (0..6)
            .map(|_| {
                Rule::new(
                    sampler.sample_formula(&schema, &premise_shape, &mut rng),
                    sampler.sample_formula(&schema, &consequent_shape, &mut rng),
                )
            })
            .collect();
        let rule_set = RuleSet::from_rules(rules);
        let compiled = CompiledRuleSet::compile(&rule_set, schema.len());
        let mut table = Table::new(schema.clone());
        for _ in 0..60 {
            let record = random_record(&schema, &mut rng);
            for (i, rule) in rule_set.iter().enumerate() {
                let expected = eval_rule(rule, &record);
                let program = RuleProgram::compile(rule);
                prop_assert_eq!(program.eval(&record), expected, "rule {} on {:?}", rule, record);
                prop_assert_eq!(compiled.eval_rule(i, &record), expected);
                prop_assert_eq!(
                    compiled.program(i).violates(&record),
                    expected == RuleStatus::Violated
                );
            }
            table.push_row_lenient(&record).unwrap();
        }
        // Whole-table scans: compiled `violations` == interpreted scan.
        for (i, rule) in rule_set.iter().enumerate() {
            prop_assert_eq!(violations(rule, &table), violations_reference(rule, &table), "rule {}", i);
        }
        let per_rule = compiled.violations(&table);
        for (i, rule) in rule_set.iter().enumerate() {
            prop_assert_eq!(&per_rule[i], &violations_reference(rule, &table), "rule {}", i);
        }
    }
}
