//! Byte-identity of the columnar hot paths against the reference
//! implementations.
//!
//! PR 4 rewrote both audit hot paths — presorted columnar C4.5
//! induction and flattened-tree columnar detection — under the
//! contract that **only the data layout changed**: every float is
//! produced by the same operations in the same order as the
//! row-at-a-time reference paths, which are retained as
//! [`Auditor::induce_reference`] / [`Auditor::detect_reference`]. This
//! property suite pins that contract on randomly generated, polluted
//! tables:
//!
//! * structure models compared through their canonical
//!   `dq-structure-model v1` rendering (the same byte surface the
//!   persistence round-trip guarantees);
//! * audit reports compared through `AuditReport::to_csv` *and* the
//!   exact `f64` bit patterns of findings and per-record confidences;
//! * both at the default thread count and pinned to one thread (CI
//!   additionally re-runs the whole suite under `DQ_THREADS=1`).

use data_audit::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn schema_with(nominal_cards: &[usize], with_numeric: bool, with_date: bool) -> Arc<Schema> {
    let mut b = SchemaBuilder::new();
    for (i, &card) in nominal_cards.iter().enumerate() {
        b = b.nominal_sized(&format!("n{i}"), card);
    }
    if with_numeric {
        b = b.numeric("x", 0.0, 100.0);
    }
    if with_date {
        b = b.date_ymd("d", (1999, 1, 1), (2003, 12, 31));
    }
    b.build().unwrap()
}

/// A generated, polluted table (pollution injects NULLs, out-of-domain
/// codes and domain-crossing values — the messy cases the columnar
/// cache must encode exactly like `Value` semantics).
fn dirty_table(schema: Arc<Schema>, n_rules: usize, n_rows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let benchmark = TestDataGenerator::new(schema, n_rules, n_rows).generate(&mut rng);
    let (dirty, _log) = pollute(&benchmark.clean, &PollutionConfig::standard(), &mut rng);
    dirty
}

fn assert_equivalent(table: &Table, threads: impl Into<dq_exec::Parallelism>) {
    let auditor = Auditor::new(AuditConfig { threads: threads.into(), ..AuditConfig::default() });
    let model = auditor.induce(table).expect("columnar induction succeeds");
    let reference_model = auditor.induce_reference(table).expect("reference induction succeeds");

    // Trees and provenance compared through the canonical model text.
    let rendered = dq_core::render_model(&model, table.schema()).unwrap();
    let reference_rendered = dq_core::render_model(&reference_model, table.schema()).unwrap();
    assert_eq!(rendered, reference_rendered, "dq-structure-model v1 rendering must not drift");

    // Reports compared through the CSV byte surface and the raw bits.
    let report = auditor.detect(&model, table);
    let reference_report = auditor.detect_reference(&reference_model, table);
    assert_eq!(report.to_csv(table.schema()), reference_report.to_csv(table.schema()));
    assert_eq!(report.findings.len(), reference_report.findings.len());
    for (a, b) in report.findings.iter().zip(&reference_report.findings) {
        assert_eq!(
            (a.row, a.attr, a.observed, a.proposed),
            (b.row, b.attr, b.observed, b.proposed)
        );
        assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
        assert_eq!(a.support.to_bits(), b.support.to_bits());
    }
    assert_eq!(report.record_confidence.len(), reference_report.record_confidence.len());
    for (i, (a, b)) in
        report.record_confidence.iter().zip(&reference_report.record_confidence).enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "record confidence, row {i}");
    }

    // Corrections derive from the findings and must agree too.
    assert_eq!(propose_corrections(&report), propose_corrections(&reference_report));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Presorted induction and flat detection are byte-identical to the
    /// reference paths on random polluted tables of random shapes.
    #[test]
    fn columnar_paths_match_reference_on_random_tables(
        seed in 0u64..10_000,
        n_rules in 0usize..10,
        rows in 80usize..600,
        card in 2usize..6,
        shape in 0usize..4,
    ) {
        let (with_numeric, with_date) = (shape & 1 != 0, shape & 2 != 0);
        let schema = schema_with(&[card, card + 1, 3], with_numeric, with_date);
        let table = dirty_table(schema, n_rules, rows, seed);
        assert_equivalent(&table, None);
    }

    /// The same contract pinned to the exact serial path (`threads =
    /// Some(1)`), so the equivalence cannot hide behind chunk merging.
    #[test]
    fn columnar_paths_match_reference_single_threaded(
        seed in 0u64..10_000,
        rows in 80usize..400,
    ) {
        let schema = schema_with(&[4, 3], true, true);
        let table = dirty_table(schema, 6, rows, seed);
        assert_equivalent(&table, Some(1));
    }
}

/// A deterministic large-ish mixed fixture on top of the random sweep:
/// ties in ordered values, heavy NULLs and an out-of-domain code, at a
/// size where the presorted recursion actually recurses several levels.
#[test]
fn columnar_paths_match_reference_on_adversarial_fixture() {
    let schema = schema_with(&[5, 2, 3], true, true);
    let mut table = Table::new(schema);
    for i in 0..3000usize {
        let n0 = if i % 17 == 0 { Value::Null } else { Value::Nominal((i % 5) as u32) };
        let n1 = Value::Nominal(u32::from(i % 10 < 5));
        let n2 = Value::Nominal((i % 3) as u32);
        // Few distinct numeric values => many ties for the stable sort.
        let x = if i % 7 == 0 { Value::Null } else { Value::Number((i % 4) as f64 * 10.0) };
        let d = if i % 11 == 0 {
            Value::Null
        } else {
            Value::Date(dq_table::date::days_from_civil(2000, 1, 1) + (i % 6) as i64)
        };
        table.push_row(&[n0, n1, n2, x, d]).unwrap();
    }
    table
        .push_row_lenient(&[
            Value::Nominal(99),
            Value::Nominal(0),
            Value::Nominal(1),
            Value::Number(30.0),
            Value::Null,
        ])
        .unwrap();
    assert_equivalent(&table, None);
    assert_equivalent(&table, Some(1));
}
