//! Audit-side compiled-program equivalence.
//!
//! PR 5 compiled the *generation* side onto `dq_logic::program`; this
//! suite pins the *audit* side that followed it there. Both compiled
//! scans — the association auditor's violation programs and the
//! structure-rule audit lowered from the per-attribute C4.5 models —
//! must be **byte-identical** to their retained interpreted
//! `_reference` paths on randomly polluted tables (NULL cells and
//! out-of-label `#<code>` nominal codes included), at every thread
//! count. The comparison is literal: the rendered report CSV, the
//! exact finding lists, and bit-equal `f64` record confidences.

use data_audit::prelude::*;
use dq_core::{AssociationAuditConfig, AssociationAuditor, AssociationScoring};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A rule-bearing nominal/numeric benchmark, polluted by the standard
/// suite and then roughed up further: random NULLs and out-of-label
/// nominal codes (rendered `#<code>` in CSV) that no generator emits
/// but real dirty data contains.
fn messy_benchmark(seed: u64) -> Table {
    let schema = SchemaBuilder::new()
        .nominal("brv", ["404", "501", "610"])
        .nominal("gbm", ["901", "911", "921"])
        .nominal("flag", ["y", "n"])
        .numeric("load", 0.0, 50.0)
        .build()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let benchmark = TestDataGenerator::new(schema, 12, 1500).generate(&mut rng);
    let (mut dirty, _) = pollute(&benchmark.clean, &PollutionConfig::standard(), &mut rng);
    let n = dirty.n_rows();
    for _ in 0..40 {
        let row = rng.gen_range(0..n);
        let col = rng.gen_range(0..3usize);
        dirty.set(row, col, Value::Null).unwrap();
    }
    for _ in 0..25 {
        let row = rng.gen_range(0..n);
        let col = rng.gen_range(0..3usize);
        // Cardinalities are 2-3; codes 7.. are firmly out of label.
        dirty.set(row, col, Value::Nominal(7 + rng.gen_range(0..5) as u32)).unwrap();
    }
    dirty
}

/// Bit-level view of the per-record confidences (plain `==` on f64
/// would already accept -0.0 / 0.0 and reject NaN).
fn bits(confidences: &[f64]) -> Vec<u64> {
    confidences.iter().map(|c| c.to_bits()).collect()
}

#[test]
fn association_audit_matches_reference_at_every_thread_count() {
    for seed in [11u64, 77] {
        let table = messy_benchmark(seed);
        for scoring in [AssociationScoring::Sum, AssociationScoring::Max] {
            let serial = AssociationAuditor::new(AssociationAuditConfig {
                scoring,
                threads: 1.into(),
                ..AssociationAuditConfig::default()
            });
            let (miner, _) = serial.run(&table).unwrap();
            let reference = serial.detect_reference(&miner, &table);
            for threads in [1usize, 2, 4] {
                let auditor = AssociationAuditor::new(AssociationAuditConfig {
                    scoring,
                    threads: threads.into(),
                    ..AssociationAuditConfig::default()
                });
                let report = auditor.detect(&miner, &table);
                assert_eq!(
                    report.to_csv(table.schema()),
                    reference.to_csv(table.schema()),
                    "seed {seed}, {scoring:?}, {threads} threads"
                );
                assert_eq!(report.findings, reference.findings);
                assert_eq!(bits(&report.record_confidence), bits(&reference.record_confidence));
                assert_eq!(report.n_suspicious(), reference.n_suspicious());
            }
        }
    }
}

#[test]
fn structure_rule_audit_matches_reference_at_every_thread_count() {
    for seed in [11u64, 77] {
        let table = messy_benchmark(seed);
        for flag_nulls in [true, false] {
            let config = AuditConfig { flag_nulls, ..AuditConfig::default() };
            let model = Auditor::new(config.clone()).induce(&table).unwrap();
            let reference = Auditor::new(AuditConfig { threads: 1.into(), ..config.clone() })
                .detect_rules_reference(&model, &table);
            for threads in [1usize, 2, 4] {
                let auditor =
                    Auditor::new(AuditConfig { threads: threads.into(), ..config.clone() });
                let report = auditor.detect_rules(&model, &table);
                assert_eq!(
                    report.to_csv(table.schema()),
                    reference.to_csv(table.schema()),
                    "seed {seed}, flag_nulls {flag_nulls}, {threads} threads"
                );
                assert_eq!(report.findings, reference.findings);
                assert_eq!(bits(&report.record_confidence), bits(&reference.record_confidence));
            }
        }
    }
}

#[test]
fn structure_rule_audit_agrees_with_the_classifier_scan_on_flagging() {
    // The lowered rule programs and the tree scan disagree only where
    // rule semantics differ from tree semantics (NULL-strict premises
    // vs distributed missing values). On the rows both paths score,
    // the rule audit must never *exceed* the classifier audit's
    // overall error confidence — every rule is one root-to-leaf path
    // of the same tree, scored with the same counts.
    let table = messy_benchmark(42);
    let auditor = Auditor::default();
    let model = auditor.induce(&table).unwrap();
    let tree_scan = auditor.detect(&model, &table);
    let rule_scan = auditor.detect_rules(&model, &table);
    assert_eq!(tree_scan.record_confidence.len(), rule_scan.record_confidence.len());
    assert!(rule_scan.n_suspicious() > 0, "the messy benchmark must trip some rule");
    for (row, (&r, &t)) in
        rule_scan.record_confidence.iter().zip(&tree_scan.record_confidence).enumerate()
    {
        assert!(r <= t + 1e-12, "row {row}: rule audit {r} exceeds classifier audit {t}");
    }
}
