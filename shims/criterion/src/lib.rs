//! Offline, dependency-free re-implementation of the subset of the
//! `criterion` API this workspace's benches use.
//!
//! The build environment has no access to crates.io, so the bench
//! harness is vendored: `Criterion`, `BenchmarkGroup` with
//! `throughput`/`sample_size`/`bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `black_box` and the `criterion_group!`/
//! `criterion_main!` macros. Measurements are honest wall-clock
//! medians over a small fixed number of samples — good enough to rank
//! the paper's hot paths against each other, without criterion's
//! statistical machinery. Each bench prints one
//! `name ... median time/iter (throughput)` line.
//!
//! Two environment knobs serve the CI perf trajectory:
//!
//! * `DQ_BENCH_QUICK=1` — smoke mode: 3 samples on a reduced time
//!   budget, so the whole bench suite finishes in minutes (medians of
//!   singleton samples proved too noisy for the perf trajectory on a
//!   shared CI container);
//! * `DQ_BENCH_JSON=path` — append one JSON line
//!   `{"name": …, "median_ns": …}` per benchmark to `path`
//!   (JSON-lines, because each bench binary is a separate process);
//!   CI folds the lines into the uploaded `BENCH_<n>.json` artifact.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spent measuring one benchmark function.
const TARGET_MEASURE_TIME: Duration = Duration::from_millis(200);

/// Samples collected per benchmark (the median is reported).
const N_SAMPLES: usize = 5;

/// `true` when `DQ_BENCH_QUICK` asks for the CI smoke mode.
fn quick_mode() -> bool {
    std::env::var_os("DQ_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

/// The per-benchmark measuring budget, shrunk in quick mode.
fn target_measure_time() -> Duration {
    if quick_mode() {
        Duration::from_millis(120)
    } else {
        TARGET_MEASURE_TIME
    }
}

/// Entry point handed to the `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run `f` as a standalone benchmark named `name`.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: N_SAMPLES,
        }
    }

    /// Accepted for API compatibility; this shim has no CLI options.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declare the work per iteration so a rate is reported.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Override the number of samples (clamped to keep runs short).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(2, 20);
        self
    }

    /// Benchmark `f` against a borrowed `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark_with(&label, self.throughput.clone(), self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmark a closure under this group's settings.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark_with(&label, self.throughput.clone(), self.sample_size, |b| f(b));
        self
    }

    /// End the group (separator line only; nothing is accumulated).
    pub fn finish(self) {
        eprintln!();
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/parameter` form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// `group/name/parameter` form.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Clone, Debug)]
pub enum Throughput {
    /// Logical elements (rows, formulas, ...) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Timer handed to the benchmark closure.
pub struct Bencher {
    /// Nanoseconds per iteration, one entry per sample.
    sampled_nanos: Vec<f64>,
    samples: usize,
}

impl Bencher {
    /// Measure `routine`, calling it enough times to fill the sample
    /// budget. The routine's return value is `black_box`ed so the
    /// computation is not optimized away.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: one timed call decides how many iterations fit in
        // the per-sample budget.
        let once = Instant::now();
        black_box(routine());
        let single = once.elapsed().max(Duration::from_nanos(1));
        let budget = target_measure_time() / self.samples.max(1) as u32;
        let iters = (budget.as_nanos() / single.as_nanos()).clamp(1, 1_000) as u64;

        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let nanos = start.elapsed().as_nanos() as f64 / iters as f64;
            self.sampled_nanos.push(nanos);
        }
    }

    fn median_nanos(&mut self) -> f64 {
        if self.sampled_nanos.is_empty() {
            return f64::NAN;
        }
        self.sampled_nanos.sort_by(|a, b| a.total_cmp(b));
        self.sampled_nanos[self.sampled_nanos.len() / 2]
    }
}

fn run_benchmark<F>(name: &str, throughput: Option<Throughput>, f: F)
where
    F: FnMut(&mut Bencher),
{
    run_benchmark_with(name, throughput, N_SAMPLES, f);
}

fn run_benchmark_with<F>(name: &str, throughput: Option<Throughput>, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let samples = if quick_mode() { samples.clamp(1, 3) } else { samples.max(1) };
    let mut bencher = Bencher { sampled_nanos: Vec::with_capacity(samples), samples };
    f(&mut bencher);
    let nanos = bencher.median_nanos();
    record_json_line(name, nanos);
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.0} elem/s)", n as f64 / (nanos * 1e-9))
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.0} B/s)", n as f64 / (nanos * 1e-9))
        }
        None => String::new(),
    };
    eprintln!("{name:<44} {}{rate}", format_nanos(nanos));
}

/// Append a `{"name": …, "median_ns": …}` JSON line to the
/// `DQ_BENCH_JSON` file, if the knob is set. Failures are reported on
/// stderr but never fail the bench run.
fn record_json_line(name: &str, nanos: f64) {
    let Some(path) = std::env::var_os("DQ_BENCH_JSON") else {
        return;
    };
    append_json_line(std::path::Path::new(&path), name, nanos);
}

/// The env-free half of [`record_json_line`] (unit-testable without
/// mutating process-global state).
fn append_json_line(path: &std::path::Path, name: &str, nanos: f64) {
    if nanos.is_nan() {
        return;
    }
    use std::io::Write as _;
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect();
    let line = format!("{{\"name\": \"{escaped}\", \"median_ns\": {nanos:.0}}}\n");
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = result {
        eprintln!("DQ_BENCH_JSON: cannot append to {}: {e}", path.display());
    }
}

fn format_nanos(nanos: f64) -> String {
    if nanos.is_nan() {
        "not measured".to_string()
    } else if nanos < 1_000.0 {
        format!("{nanos:.0} ns/iter")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs/iter", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms/iter", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s/iter", nanos / 1_000_000_000.0)
    }
}

/// Collect bench functions into a single runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit the `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("shim/smoke", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(100));
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter(100), &100u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    #[test]
    fn json_lines_are_appended_and_escaped() {
        // Exercise the env-free half directly — mutating the real
        // DQ_BENCH_JSON here would race the other tests' benchmark
        // runs (record_json_line reads it on every finished bench).
        let path = std::env::temp_dir().join(format!("dq-bench-json-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        append_json_line(&path, "group/bench \"x\"", 1234.6);
        append_json_line(&path, "skipped", f64::NAN);
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(text, "{\"name\": \"group/bench \\\"x\\\"\", \"median_ns\": 1235}\n");
    }

    #[test]
    fn format_covers_magnitudes() {
        assert!(format_nanos(10.0).ends_with("ns/iter"));
        assert!(format_nanos(10_000.0).ends_with("µs/iter"));
        assert!(format_nanos(10_000_000.0).ends_with("ms/iter"));
        assert!(format_nanos(10_000_000_000.0).ends_with("s/iter"));
    }
}
