//! Offline, dependency-free re-implementation of the subset of the
//! `rand` 0.8 API this workspace relies on.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of primitives it actually uses: a seedable
//! xoshiro256++ generator behind [`rngs::StdRng`], the [`Rng`]
//! extension trait with `gen`/`gen_range`/`gen_bool`, and uniform
//! sampling over integer and float ranges. The sampling is plain
//! modulo/affine mapping — statistically fine for test-data generation
//! and benchmarks, not meant for cryptography.
//!
//! Everything is deterministic per seed, which tier-1 tests depend on.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface; only the `seed_from_u64` entry point is used by
/// this workspace.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn from the "standard" distribution
/// (`rng.gen::<T>()`).
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a uniform value can be drawn from (`rng.gen_range(..)`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uniform_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

uniform_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // `start + unit * (end - start)` can round up to exactly
                // `end` even though `unit < 1`; resample to keep the
                // half-open contract (terminates with probability 1).
                loop {
                    let unit = <$t as StandardSample>::sample_standard(rng);
                    let x = self.start + unit * (self.end - self.start);
                    if x < self.end {
                        return x;
                    }
                }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

uniform_float_range!(f32, f64);

/// User-facing extension trait, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draw from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators; only `StdRng` is provided.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the stand-in for rand's
    /// `StdRng`; same interface, different — but fixed — stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The generator's full internal state — four xoshiro256++
        /// words. Persisting these (a checkpoint journal) and later
        /// rebuilding with [`StdRng::from_state`] resumes the stream
        /// at exactly the next draw, bit for bit.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a state captured by
        /// [`StdRng::state`]. The restored stream continues exactly
        /// where the captured one stood.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
        let mut c = StdRng::seed_from_u64(43);
        let differs = (0..10).any(|_| a.gen::<f64>() != c.gen::<f64>());
        assert!(differs, "different seeds must give different streams");
    }

    #[test]
    fn unit_interval_and_ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let k = rng.gen_range(3usize..17);
            assert!((3..17).contains(&k));
            let j = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&j));
            let f = rng.gen_range(2.5f64..=3.5);
            assert!((2.5..=3.5).contains(&f));
        }
    }

    #[test]
    fn state_round_trip_resumes_the_stream_exactly() {
        let mut rng = StdRng::seed_from_u64(2003);
        for _ in 0..57 {
            rng.gen::<u64>();
        }
        let saved = rng.state();
        let ahead: Vec<u64> = (0..64).map(|_| rng.gen::<u64>()).collect();
        let mut resumed = StdRng::from_state(saved);
        let resumed_ahead: Vec<u64> = (0..64).map(|_| resumed.gen::<u64>()).collect();
        assert_eq!(ahead, resumed_ahead, "restored state must continue the exact stream");
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets reachable: {seen:?}");
    }
}
