//! Offline, dependency-free re-implementation of the subset of the
//! `proptest` API this workspace's property tests use.
//!
//! The build environment has no access to crates.io, so this shim
//! provides the pieces the test suites actually exercise:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_filter`,
//!   `prop_recursive` and `boxed`, plus strategies for numeric ranges,
//!   tuples, [`strategy::Just`] and unions;
//! * [`collection::vec`] for variable-length vectors;
//! * the [`proptest!`] runner macro with `#![proptest_config(..)]`
//!   support, and the `prop_assert!`/`prop_assert_eq!`/`prop_assume!`/
//!   `prop_oneof!` assertion and composition macros;
//! * a deterministic [`test_runner::ProptestConfig`] carrying a fixed
//!   RNG seed, so property tests are reproducible in CI.
//!
//! Shrinking is intentionally not implemented: a failing case panics
//! with the rendered assertion message (the generated inputs for the
//! paper-scale suites are small enough to debug directly).

pub mod strategy;

pub mod test_runner;

pub mod collection {
    //! Strategies for collections (only `Vec` is needed here).

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length. Mirrors
    /// `proptest::collection::SizeRange` closely enough that plain
    /// `usize` range literals (`1..4`, `2..=8`) keep inferring `usize`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange { lo: exact, hi_inclusive: exact }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty collection size range");
            SizeRange { lo, hi_inclusive: hi }
        }
    }

    /// Strategy producing `Vec`s whose length is drawn from `len` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, len: len.into() }
    }

    /// See [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.lo..=self.len.hi_inclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines deterministic property tests; mirrors `proptest::proptest!`.
///
/// Supports the `#![proptest_config(expr)]` header and any number of
/// `fn name(arg in strategy, ...) { body }` items carrying their own
/// attributes (`#[test]`, doc comments, ...).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr); $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                // Salt the workspace-wide seed with the test name so
                // each property walks its own (still fixed) stream.
                let salt = $crate::test_runner::fnv1a(stringify!($name));
                let mut rng = $crate::test_runner::rng_for_seed(config.rng_seed ^ salt);
                // Build each strategy once, outside the case loop (the
                // value bindings below shadow these names per case).
                let ($($arg,)+) = ($($strat,)+);
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut rng);)+
                    let outcome = (|| -> $crate::test_runner::TestCaseResult {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject(why)) => {
                            rejected += 1;
                            if rejected > config.max_global_rejects {
                                panic!(
                                    "property {} rejected {} inputs (last: {})",
                                    stringify!($name), rejected, why
                                );
                            }
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} failed after {} passing cases\n{}",
                                stringify!($name), accepted, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` for property bodies; fails the current case (with the
/// optional formatted context) instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {}\n  {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n  {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Discards the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

/// Uniform choice between strategies that produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
