//! The [`Strategy`] trait and the combinators the workspace's property
//! tests compose: ranges, tuples, `Just`, unions, map/filter and
//! bounded recursion. Generation is a single deterministic draw per
//! case from the runner's seeded RNG; there is no shrinking.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// How many times a filtered strategy retries before giving up. The
/// filters in this workspace reject a small constant fraction of
/// draws, so hitting this bound indicates a broken predicate.
const MAX_FILTER_RETRIES: u32 = 1_000;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value. Deterministic given the RNG state.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`; `whence` labels the filter
    /// in the too-many-rejects panic.
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence: whence.into(), pred }
    }

    /// Build a recursive strategy: `self` is the leaf case and
    /// `recurse` wraps an inner strategy into a deeper one. Recursion
    /// depth is bounded by `depth`; at each level a coin flip decides
    /// between descending and bottoming out at a leaf, which keeps the
    /// expected size small. `desired_size` and `expected_branch_size`
    /// are accepted for API compatibility but not used.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            let bottom = leaf.clone();
            strat = BoxedStrategy::from_fn(move |rng| {
                if rng.gen::<bool>() {
                    deeper.generate(rng)
                } else {
                    bottom.generate(rng)
                }
            });
        }
        strat
    }

    /// Type-erase this strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::from_fn(move |rng| self.generate(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    gen_fn: Arc<dyn Fn(&mut StdRng) -> T>,
}

impl<T> BoxedStrategy<T> {
    fn from_fn(f: impl Fn(&mut StdRng) -> T + 'static) -> Self {
        BoxedStrategy { gen_fn: Arc::new(f) }
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { gen_fn: Arc::clone(&self.gen_fn) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.gen_fn)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..MAX_FILTER_RETRIES {
            let candidate = self.inner.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter({:?}) rejected {} consecutive draws", self.whence, MAX_FILTER_RETRIES);
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the (non-empty) list of alternatives.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone() }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($S:ident : $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(S0: 0);
tuple_strategy!(S0: 0, S1: 1);
tuple_strategy!(S0: 0, S1: 1, S2: 2);
tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3);
tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4);
tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5);
tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5, S6: 6);
tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5, S6: 6, S7: 7);
