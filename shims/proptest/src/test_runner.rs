//! Runner configuration and the per-case error channel used by the
//! `proptest!`/`prop_assert!` macros.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Workspace-wide default seed ("data seed"); every property test
/// derives its stream from this unless overridden per suite, so runs
/// are reproducible across machines and CI.
pub const DEFAULT_RNG_SEED: u64 = 0xDA7A_5EED;

/// Configuration for a `proptest!` block, set via
/// `#![proptest_config(ProptestConfig { .. })]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each property must pass.
    pub cases: u32,
    /// Base seed for the deterministic RNG; combined with a per-test
    /// name hash so sibling properties see independent streams.
    pub rng_seed: u64,
    /// Upper bound on `prop_assume!` rejections before the property is
    /// reported as failing to generate inputs.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, rng_seed: DEFAULT_RNG_SEED, max_global_rejects: 4_096 }
    }
}

impl ProptestConfig {
    /// Convenience constructor mirroring `proptest`'s
    /// `ProptestConfig::with_cases`.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` (not a failure).
    Reject(String),
    /// An assertion failed; the payload is the rendered message.
    Fail(String),
}

/// Result type the macro-generated case closures return.
pub type TestCaseResult = Result<(), TestCaseError>;

/// FNV-1a hash used to salt the seed with the property's name.
pub fn fnv1a(name: &str) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Build the deterministic generator for one property run.
pub fn rng_for_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_deterministic_and_bounded() {
        let cfg = ProptestConfig::default();
        assert_eq!(cfg.rng_seed, DEFAULT_RNG_SEED);
        assert!(cfg.cases > 0);
        let overridden = ProptestConfig { cases: 16, ..ProptestConfig::default() };
        assert_eq!(overridden.cases, 16);
        assert_eq!(overridden.rng_seed, cfg.rng_seed);
    }

    #[test]
    fn name_salt_separates_streams() {
        assert_ne!(fnv1a("negation_is_semantic_complement"), fnv1a("dnf_preserves_semantics"));
        assert_eq!(fnv1a("same"), fnv1a("same"));
    }
}
