//! End-to-end checks that the `proptest!` runner actually runs cases,
//! fails on violated assertions and honors `prop_assume!` — guarding
//! against the macro expanding to a vacuous test body.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

static EXACT_CASES: AtomicU32 = AtomicU32::new(0);

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn generated_values_respect_their_strategies(x in 0u32..1000, y in 0.0f64..1.0) {
        prop_assert!(x < 1000);
        prop_assert!((0.0..1.0).contains(&y), "y out of range: {y}");
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn violated_assertions_fail_the_property(x in 5u32..10) {
        prop_assert!(x < 7, "x was {}", x);
    }

    #[test]
    fn assume_discards_without_failing(x in 0u32..10) {
        prop_assume!(x % 2 == 0);
        prop_assert_eq!(x % 2, 0);
    }

    #[test]
    fn tuples_filters_and_vecs_compose(
        pair in (0usize..5, 0usize..5).prop_filter("distinct", |(a, b)| a != b),
        xs in proptest::collection::vec(0i64..100, 1..8),
    ) {
        prop_assert!(pair.0 != pair.1);
        prop_assert!(!xs.is_empty() && xs.len() < 8);
        prop_assert!(xs.iter().all(|&x| (0..100).contains(&x)));
    }

    // No #[test] attribute: this one is invoked directly by
    // `case_count_is_honored` below so the counter cannot race with
    // the harness's parallel test threads.
    fn exact_case_counter(_x in 0u32..10) {
        EXACT_CASES.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn case_count_is_honored() {
    exact_case_counter();
    assert_eq!(EXACT_CASES.load(Ordering::Relaxed), 64);
}

#[test]
fn boxed_strategies_are_deterministic_per_seed() {
    let strat = prop_oneof![Just(1u32), Just(2u32), 10u32..20].boxed();
    let a: Vec<u32> = {
        let mut rng = proptest::test_runner::rng_for_seed(99);
        (0..32).map(|_| strat.generate(&mut rng)).collect()
    };
    let b: Vec<u32> = {
        let mut rng = proptest::test_runner::rng_for_seed(99);
        (0..32).map(|_| strat.generate(&mut rng)).collect()
    };
    assert_eq!(a, b);
    assert!(a.iter().any(|&v| v >= 10), "union reaches every arm: {a:?}");
}
