//! # data-audit — data mining-based data quality tools
//!
//! Umbrella crate for the workspace reproducing *Systematic Development
//! of Data Mining-Based Data Quality Tools* (Luebbers, Grimmer, Jarke;
//! VLDB 2003). It re-exports every subsystem under one roof so that
//! examples, integration tests and downstream users can depend on a
//! single crate:
//!
//! * [`table`] — typed columnar tables with nominal/numeric/date
//!   domains and NULLs, chunked row-range views for sharded scans, the
//!   `BatchSource` streaming abstraction and the paged on-disk backend;
//! * [`exec`] — a std-only scoped worker pool with deterministic
//!   input-order results plus the shared `Parallelism` knob, the
//!   execution substrate of every parallel phase;
//! * [`fault`] — deterministic fault injection: seeded replayable
//!   fault plans, `FaultSource` batch-stream wrappers and fault-capable
//!   `Read`/`Write` adapters used by the chaos suite;
//! * [`stats`] — confidence intervals, entropy measures, distributions,
//!   evaluation matrices;
//! * [`logic`] — TDG formulae/rules, satisfiability, natural rule sets;
//! * [`bayes`] — Bayesian networks for multivariate start distributions;
//! * [`tdg`] — the rule-pattern based artificial test data generator;
//! * [`pollute`] — controlled data corruption with pollution logs;
//! * [`mining`] — C4.5 decision trees and baseline classifiers;
//! * [`core`] — the data auditing tool: error confidence, the multiple
//!   classification/regression auditor, corrections, structure models;
//! * [`serve`] — the long-lived audit daemon: a std-only HTTP/1.1
//!   server keeping persisted models resident, routing requests by
//!   model name or schema fingerprint;
//! * [`job`] — checkpoint/resume for streaming jobs: the crash-safe
//!   `dq-job v1` journal, commit-point crash knobs, and the
//!   resumable-output plumbing behind `dq … --checkpoint/--resume`;
//! * [`quis`] — a synthetic QUIS-like engine-composition table;
//! * [`eval`] — the test environment: generate → pollute → audit →
//!   score, plus canned experiments for every figure/table of the
//!   paper.
//!
//! ## Quick start
//!
//! ```
//! use data_audit::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // 1. Describe a relation and generate rule-structured test data.
//! let schema = SchemaBuilder::new()
//!     .nominal("color", ["red", "green", "blue", "grey"])
//!     .nominal("shape", ["disc", "drum", "vent"])
//!     .build()
//!     .unwrap();
//! let mut rng = StdRng::seed_from_u64(7);
//! let generated = TestDataGenerator::new(schema, 6, 600).generate(&mut rng);
//!
//! // 2. Corrupt it in a controlled, logged way.
//! let (dirty, log) = pollute(&generated.clean, &PollutionConfig::standard(), &mut rng);
//!
//! // 3. Audit the dirty table; detections can be scored against the log.
//! let (model, report) = Auditor::default().run(&dirty).unwrap();
//! assert_eq!(report.n_rows(), dirty.n_rows());
//! assert!(model.n_rules() < dirty.n_rows());
//! ```
//!
//! ## Workspace layout
//!
//! Each subsystem is its own crate under `crates/` (package names carry
//! a `dq_` prefix: `crates/table` is `dq_table`, and so on); this crate
//! is the root package. The dependency DAG between the members:
//!
//! ```text
//! table ──┬────────────┬──────────┬─────────┬──────────────────┐
//!         stats        logic      bayes     mining             │
//!         │  │          │  │        │        │ (stats,exec)    │
//!         │  └──────────┼──┼────────┼────────┤                 │
//!         │   pollute ──┘  └── tdg ─┘        └── core (exec)   │
//!         │      │          (exec)                │  │         │
//!         └──── quis ──────────┴─── eval (exec) ──┘  serve ────┘
//!                                         │         (exec)
//!                                       bench (+ the `repro` bin)
//! ```
//!
//! In words: `stats`, `logic`, `bayes` and `mining` build directly on
//! `table`; `tdg` combines `logic`/`stats`/`bayes`; `pollute` needs
//! `stats`; `core` needs `mining`/`stats` (structure induction fans
//! out one classifier per attribute, deviation detection shards the
//! record scan into row chunks); `serve` wraps `core`'s resident audit
//! engine in a std-only HTTP daemon; `quis` composes
//! `logic`/`pollute`/`stats`; `eval` sits on top of everything below
//! it; `dq_bench` hosts fixtures for the criterion benches. `exec`
//! itself is std-only and depends on nothing: it supplies the shared
//! [`exec::Parallelism`] knob (explicit count > `DQ_THREADS` > cores)
//! and worker pool to `mining`, `tdg`, `core`, `serve`, `eval`,
//! `bench` and the CLI. `fault` depends only on `table`: it wraps any
//! `BatchSource` or byte stream with a seeded, replayable fault
//! schedule (the chaos suite's instrument — see the README's "Fault
//! tolerance" section). The `rand`/`proptest`/`criterion` dependencies
//! resolve to offline, API-compatible shims under `shims/` because the
//! build environment has no crates.io access.
//!
//! The tier-1 verification for the whole workspace is:
//!
//! ```text
//! cargo build --release && cargo test -q
//! ```
//!
//! See `README.md` for the same map plus per-crate one-liners.

pub use dq_bayes as bayes;
pub use dq_core as core;
pub use dq_eval as eval;
pub use dq_exec as exec;
pub use dq_fault as fault;
pub use dq_job as job;
pub use dq_logic as logic;
pub use dq_mining as mining;
pub use dq_pollute as pollute;
pub use dq_quis as quis;
pub use dq_serve as serve;
pub use dq_stats as stats;
pub use dq_table as table;
pub use dq_tdg as tdg;

/// One-stop imports for examples and applications.
///
/// Everything a typical audit touches is re-exported flat: schema and
/// table building (`SchemaBuilder`, `Table`, `Value`), rule logic
/// (`parse_rule`, `Formula`), generation and pollution
/// (`TestDataGenerator`, `pollute`), auditing (`Auditor`,
/// `AuditReport`, `propose_corrections`) and scoring
/// (`ConfusionMatrix`, `TestEnvironment`).
///
/// ```
/// use data_audit::prelude::*;
///
/// // Rule logic and schema building come from one import.
/// let schema = SchemaBuilder::new()
///     .nominal("color", ["red", "green", "blue"])
///     .nominal("shape", ["disc", "drum", "vent"])
///     .build()
///     .unwrap();
/// let rule: Rule = parse_rule(&schema, "color = red -> shape = disc").unwrap();
/// assert_eq!(rule.render(&schema), "color = red -> shape = disc");
///
/// // Auditing types are configured through the same prelude.
/// let auditor = Auditor::new(AuditConfig::default());
/// let table = Table::new(schema.clone());
/// assert_eq!(table.n_rows(), 0);
/// let _ = (auditor, PollutionConfig::standard(), InducerKind::default());
/// ```
pub mod prelude {
    pub use dq_core::{
        apply_corrections, corrections_to_csv, propose_corrections, AuditConfig, AuditReport,
        Auditor, Correction, Finding, StructureModel,
    };
    pub use dq_eval::{Scale, Series, TestEnvironment};
    pub use dq_exec::{Parallelism, WorkerPool};
    pub use dq_fault::{FaultPlan, FaultProfile, FaultRead, FaultSource, FaultWrite};
    pub use dq_logic::{parse_formula, parse_rule, Atom, Formula, Rule, RuleSet};
    pub use dq_mining::InducerKind;
    pub use dq_pollute::{pollute, Polluter, PollutionConfig, PollutionLog, PollutionStep};
    pub use dq_stats::{ConfusionMatrix, CorrectionMatrix, DistributionSpec};
    pub use dq_table::{
        read_csv, read_schema, render_schema, write_csv, write_schema, AttrType, Attribute,
        BatchSource, CsvChunkReader, CsvWriter, PagedTable, PagedWriter, ReplaySource, Schema,
        SchemaBuilder, Table, Value,
    };
    pub use dq_tdg::{GeneratedBenchmark, StartDistributions, TestDataGenerator};
}
